//! A bounded, long-lived worker pool with explicit backpressure.
//!
//! The fork-join helpers in the crate root ([`scoped_map`] and friends)
//! spawn scoped threads per call — right for data-parallel kernels,
//! wrong for a serving front end, which needs a *fixed* set of workers
//! multiplexing an unbounded stream of independent requests under a
//! *bounded* amount of queued memory. [`WorkerPool`] is that primitive:
//!
//! * **Fixed N workers, one `Mutex`+`Condvar` FIFO queue.** Jobs run in
//!   submission order (FIFO dispatch; completion order depends on job
//!   durations, as in any pool).
//! * **Bounded depth, non-blocking rejection.** [`WorkerPool::submit`]
//!   never blocks and never buffers past the configured depth: a full
//!   queue returns [`SubmitError::QueueFull`] immediately, so the
//!   caller can reply with typed backpressure instead of queuing
//!   unbounded memory. Overload degrades to a counted, explicit "try
//!   again", never to an OOM.
//! * **Panic isolation.** A panicking job is caught and counted; the
//!   worker thread survives and keeps pulling jobs. (Callers that need
//!   to observe their own panics — e.g. to turn one into an error
//!   reply — should wrap their job bodies; the pool's catch is the
//!   backstop that keeps the *thread* alive.)
//! * **Drain-then-join shutdown.** [`WorkerPool::shutdown`] rejects new
//!   submissions, lets already-queued jobs finish, and joins every
//!   worker — no detached threads outlive the pool.
//!
//! Worker threads are flagged with the crate's `in_worker` marker, so
//! parallel kernels called from inside a job run their serial (bitwise
//! identical) paths: with N pool workers the parallelism is *across*
//! jobs, and a job's nested kernels do not multiply the thread count.
//!
//! [`scoped_map`]: crate::scoped_map

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// A queued unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a [`WorkerPool::submit`] was rejected. Both variants hand the
/// job back so the caller can reply, retry, or run it inline.
pub enum SubmitError {
    /// The bounded queue is at capacity — typed backpressure. The
    /// caller decides: reply "overloaded", retry later, or shed load.
    QueueFull(Job),
    /// [`WorkerPool::shutdown`] has begun; no new work is accepted.
    ShuttingDown(Job),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => write!(f, "worker pool queue is full"),
            SubmitError::ShuttingDown(_) => write!(f, "worker pool is shutting down"),
        }
    }
}

impl std::fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The carried job is opaque; name only the rejection kind.
        match self {
            SubmitError::QueueFull(_) => f.write_str("QueueFull(..)"),
            SubmitError::ShuttingDown(_) => f.write_str("ShuttingDown(..)"),
        }
    }
}

/// Point-in-time counters for one pool — see [`WorkerPool::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs that ran to completion (panicking jobs included — they
    /// occupied a worker all the same).
    pub executed: u64,
    /// Submissions rejected with [`SubmitError::QueueFull`].
    pub rejected_full: u64,
    /// Submissions rejected with [`SubmitError::ShuttingDown`].
    pub rejected_shutdown: u64,
    /// Job panics caught by the worker backstop.
    pub panics: u64,
    /// High-water mark of queued (not yet dispatched) jobs.
    pub peak_depth: u64,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    /// Workers sleep here for jobs (or the shutdown signal).
    jobs_cv: Condvar,
    executed: AtomicU64,
    rejected_full: AtomicU64,
    rejected_shutdown: AtomicU64,
    panics: AtomicU64,
    peak_depth: AtomicU64,
}

/// Poison-recovering lock: all queue mutations are single complete
/// operations, so a panicking lock holder leaves consistent state and
/// refusing to serve it would wedge every client of the pool.
fn relock(m: &Mutex<QueueState>) -> std::sync::MutexGuard<'_, QueueState> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Fixed-size worker pool over a bounded FIFO queue. See the module
/// docs for the contract.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    depth: usize,
}

impl WorkerPool {
    /// Spawns `workers` (≥ 1) threads serving a queue bounded at
    /// `queue_depth` (≥ 1) not-yet-dispatched jobs.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            jobs_cv: Condvar::new(),
            executed: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            peak_depth: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("freehgc-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(handles),
            depth: queue_depth.max(1),
        }
    }

    /// Enqueues `job` without blocking. A full queue or a shutting-down
    /// pool hands the job back as a typed rejection — the backpressure
    /// signal the serving layer converts into an overload reply.
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut q = relock(&self.shared.queue);
        if q.shutting_down {
            drop(q);
            self.shared
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown(job));
        }
        if q.jobs.len() >= self.depth {
            drop(q);
            self.shared.rejected_full.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull(job));
        }
        q.jobs.push_back(job);
        let depth = q.jobs.len() as u64;
        drop(q);
        self.shared.peak_depth.fetch_max(depth, Ordering::Relaxed);
        self.shared.jobs_cv.notify_one();
        Ok(())
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        relock_handles(&self.workers).len()
    }

    /// Jobs queued and not yet dispatched to a worker.
    pub fn queued(&self) -> usize {
        relock(&self.shared.queue).jobs.len()
    }

    /// The configured queue-depth bound.
    pub fn queue_depth(&self) -> usize {
        self.depth
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            executed: self.shared.executed.load(Ordering::Relaxed),
            rejected_full: self.shared.rejected_full.load(Ordering::Relaxed),
            rejected_shutdown: self.shared.rejected_shutdown.load(Ordering::Relaxed),
            panics: self.shared.panics.load(Ordering::Relaxed),
            peak_depth: self.shared.peak_depth.load(Ordering::Relaxed),
        }
    }

    /// Drains and joins: new submissions are rejected with
    /// [`SubmitError::ShuttingDown`] from this point on, every job
    /// already queued still runs, and every worker thread is joined
    /// before this returns. Idempotent; called by `Drop` as a backstop
    /// so a pool can never leak detached threads past its owner.
    pub fn shutdown(&self) {
        {
            let mut q = relock(&self.shared.queue);
            q.shutting_down = true;
        }
        self.shared.jobs_cv.notify_all();
        let handles = std::mem::take(&mut *relock_handles(&self.workers));
        for h in handles {
            // A worker that somehow panicked outside the job backstop
            // is already dead; joining it is still the right cleanup.
            let _ = h.join();
        }
    }
}

fn relock_handles(
    m: &Mutex<Vec<JoinHandle<()>>>,
) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .field("queue_depth", &self.depth)
            .field("queued", &self.queued())
            .finish()
    }
}

fn worker_loop(shared: &Shared) {
    // Flag the thread so nested parallel helpers run inline (serial,
    // bitwise-identical): the pool's parallelism is across jobs.
    let _guard = crate::enter_worker();
    loop {
        let job = {
            let mut q = relock(&shared.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutting_down {
                    return;
                }
                q = shared
                    .jobs_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        shared.executed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use std::time::Duration;

    fn wait_until(mut cond: impl FnMut() -> bool) {
        for _ in 0..2000 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("condition not reached within 2s");
    }

    #[test]
    fn jobs_dispatch_in_fifo_order() {
        let pool = WorkerPool::new(1, 16);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..8 {
            let order = Arc::clone(&order);
            pool.submit(Box::new(move || order.lock().unwrap().push(i)))
                .unwrap();
        }
        pool.shutdown();
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
        assert_eq!(pool.stats().executed, 8);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let pool = WorkerPool::new(1, 1);
        let gate = Arc::new(Barrier::new(2));
        let blocker = Arc::clone(&gate);
        // Occupy the single worker…
        pool.submit(Box::new(move || {
            blocker.wait();
        }))
        .unwrap();
        wait_until(|| pool.queued() == 0); // dispatched, worker blocked
                                           // …fill the single queue slot…
        pool.submit(Box::new(|| {})).unwrap();
        // …and the next submission must bounce, handing the job back.
        match pool.submit(Box::new(|| {})) {
            Err(SubmitError::QueueFull(_)) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(pool.stats().rejected_full, 1);
        gate.wait();
        pool.shutdown();
        assert_eq!(pool.stats().executed, 2, "rejected job never ran");
    }

    #[test]
    fn shutdown_drains_queued_jobs_then_rejects() {
        let pool = WorkerPool::new(1, 16);
        let gate = Arc::new(Barrier::new(2));
        let blocker = Arc::clone(&gate);
        let ran = Arc::new(AtomicUsize::new(0));
        pool.submit(Box::new(move || {
            blocker.wait();
        }))
        .unwrap();
        for _ in 0..4 {
            let ran = Arc::clone(&ran);
            pool.submit(Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        }
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&done);
        let pool = Arc::new(pool);
        let p2 = Arc::clone(&pool);
        let joiner = std::thread::spawn(move || {
            p2.shutdown();
            flag.store(true, Ordering::Relaxed);
        });
        // Shutdown must wait for the in-flight blocker and the queue.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!done.load(Ordering::Relaxed), "shutdown drains, not aborts");
        gate.wait();
        joiner.join().unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 4, "queued jobs all drained");
        match pool.submit(Box::new(|| {})) {
            Err(SubmitError::ShuttingDown(_)) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        assert_eq!(pool.stats().rejected_shutdown, 1);
    }

    #[test]
    fn panicking_job_is_counted_and_worker_survives() {
        let pool = WorkerPool::new(1, 16);
        pool.submit(Box::new(|| panic!("job dies"))).unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        pool.submit(Box::new(move || {
            r.fetch_add(1, Ordering::Relaxed);
        }))
        .unwrap();
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 1, "worker survived the panic");
        let stats = pool.stats();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.executed, 2);
    }

    #[test]
    fn pool_workers_run_nested_kernels_inline() {
        let pool = WorkerPool::new(2, 4);
        let flags = Arc::new(Mutex::new(Vec::new()));
        let f = Arc::clone(&flags);
        pool.submit(Box::new(move || {
            f.lock()
                .unwrap()
                .push((crate::in_worker(), crate::current_threads()));
        }))
        .unwrap();
        pool.shutdown();
        assert_eq!(*flags.lock().unwrap(), vec![(true, 1)]);
    }
}
