//! Pooled per-thread scratch buffers for the hot kernels.
//!
//! The sparse kernels and their iterative callers (PPR pushes, HITS
//! power iterations, propagation sweeps, `condense_target` scans) used
//! to allocate a fresh `Vec` per call for every accumulator, marker
//! array and output vector. None of those allocations carry state
//! between calls — they are pure scratch — so this module keeps them in
//! a small per-thread pool instead: [`take_f32`] / [`take_u32`] hand
//! out a buffer resized to the requested length (reusing a previously
//! returned one when possible) and the RAII guard returns it to the
//! pool on drop. A buffer that must outlive the kernel (an allocating
//! wrapper's result) is [`WsF32::detach`]ed instead, which hands the
//! caller a plain `Vec` and counts the handoff.
//!
//! Two contracts matter:
//!
//! * **Pooling never changes bits.** [`take_f32`] returns a buffer with
//!   *unspecified contents* (whatever the previous user left behind);
//!   every kernel that uses one either overwrites the full length or
//!   guards reads behind its own occupancy markers. Callers that need a
//!   zeroed buffer use the `_zeroed` variants. Given that, a pooled run
//!   is bitwise-identical to a fresh-allocation run.
//! * **Counters are per-thread and observable.** [`stats`] snapshots the
//!   current thread's take/hit/alloc counts, so a bench or test can
//!   assert a steady-state inner loop performs *zero* fresh allocations
//!   (`reset_stats`, run, check `fresh_allocs == 0`) without being
//!   perturbed by other test threads. Scoped worker threads are
//!   short-lived, so their pools (and counts) die with them — pooling
//!   pays off on the serial paths and on the caller thread, which is
//!   exactly where the single-core hot loops run.

use std::cell::{Cell, RefCell};

/// Maximum buffers kept per pool per thread; excess returns are freed.
const MAX_POOLED: usize = 16;

/// A point-in-time snapshot of the *current thread's* workspace
/// counters (the `CacheCounters` of the allocation layer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Buffers requested via `take_*`.
    pub takes: u64,
    /// Takes served by reusing a pooled buffer.
    pub pool_hits: u64,
    /// Takes that had to allocate a brand-new buffer.
    pub fresh_allocs: u64,
    /// Bytes newly allocated (fresh buffers plus capacity growth of
    /// reused ones).
    pub alloc_bytes: u64,
    /// Buffers returned to the pool by guard drops.
    pub gives: u64,
    /// Buffers detached and handed to the caller as plain `Vec`s.
    pub handoffs: u64,
}

thread_local! {
    static STATS: Cell<WorkspaceStats> = Cell::new(WorkspaceStats::default());
}

fn bump(f: impl FnOnce(&mut WorkspaceStats)) {
    STATS.with(|s| {
        let mut v = s.get();
        f(&mut v);
        s.set(v);
    });
}

/// Snapshot of the current thread's workspace counters.
pub fn stats() -> WorkspaceStats {
    STATS.with(Cell::get)
}

/// Resets the current thread's workspace counters to zero (the pools
/// themselves keep their buffers — that is the point: a reset-then-run
/// window shows the *steady-state* allocation behaviour).
pub fn reset_stats() {
    STATS.with(|s| s.set(WorkspaceStats::default()));
}

macro_rules! pool_impl {
    ($elem:ty, $pool:ident, $guard:ident, $take:ident, $take_zeroed:ident) => {
        thread_local! {
            static $pool: RefCell<Vec<Vec<$elem>>> = const { RefCell::new(Vec::new()) };
        }

        /// RAII guard over a pooled scratch buffer; derefs to the
        /// underlying `Vec` and returns it to the current thread's pool
        /// on drop.
        pub struct $guard {
            buf: Option<Vec<$elem>>,
        }

        impl $guard {
            /// Consumes the guard, handing the buffer to the caller as
            /// a plain `Vec` (it leaves the pool for good — used by
            /// allocating wrappers whose result outlives the kernel).
            pub fn detach(mut self) -> Vec<$elem> {
                bump(|s| s.handoffs += 1);
                self.buf.take().expect("buffer present until drop")
            }
        }

        impl std::ops::Deref for $guard {
            type Target = Vec<$elem>;
            fn deref(&self) -> &Vec<$elem> {
                self.buf.as_ref().expect("buffer present until drop")
            }
        }

        impl std::ops::DerefMut for $guard {
            fn deref_mut(&mut self) -> &mut Vec<$elem> {
                self.buf.as_mut().expect("buffer present until drop")
            }
        }

        impl Drop for $guard {
            fn drop(&mut self) {
                if let Some(buf) = self.buf.take() {
                    bump(|s| s.gives += 1);
                    $pool.with(|p| {
                        let mut p = p.borrow_mut();
                        if p.len() < MAX_POOLED {
                            p.push(buf);
                        }
                    });
                }
            }
        }

        /// Takes a buffer of exactly `len` elements with **unspecified
        /// contents** — the caller must fully overwrite it or guard
        /// every read (see the module docs' bitwise contract).
        pub fn $take(len: usize) -> $guard {
            let elem_bytes = std::mem::size_of::<$elem>() as u64;
            // Reuse the pooled buffer with the largest capacity so a
            // steady-state caller converges on zero growth.
            let reused = $pool.with(|p| {
                let mut p = p.borrow_mut();
                let best = (0..p.len()).max_by_key(|&i| p[i].capacity())?;
                Some(p.swap_remove(best))
            });
            let mut buf = match reused {
                Some(b) => {
                    let grown = len.saturating_sub(b.capacity()) as u64;
                    bump(|s| {
                        s.takes += 1;
                        s.pool_hits += 1;
                        s.alloc_bytes += grown * elem_bytes;
                    });
                    b
                }
                None => {
                    bump(|s| {
                        s.takes += 1;
                        s.fresh_allocs += 1;
                        s.alloc_bytes += len as u64 * elem_bytes;
                    });
                    Vec::with_capacity(len)
                }
            };
            buf.resize(len, Default::default());
            buf.truncate(len);
            $guard { buf: Some(buf) }
        }

        /// [`$take`] with the buffer fully zeroed.
        pub fn $take_zeroed(len: usize) -> $guard {
            let mut g = $take(len);
            g.fill(Default::default());
            g
        }
    };
}

pool_impl!(f32, POOL_F32, WsF32, take_f32, take_f32_zeroed);
pool_impl!(u32, POOL_U32, WsU32, take_u32, take_u32_zeroed);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_buffers_and_counts() {
        // Run on a dedicated thread: counters and pools are
        // thread-local, so this is isolated from every other test.
        std::thread::spawn(|| {
            reset_stats();
            {
                let mut a = take_f32(100);
                a[0] = 1.0;
                a[99] = 2.0;
            } // returned to the pool
            let s = stats();
            assert_eq!(s.takes, 1);
            assert_eq!(s.fresh_allocs, 1);
            assert_eq!(s.gives, 1);
            assert_eq!(s.alloc_bytes, 400);

            reset_stats();
            let b = take_f32(80); // steady state: served from the pool
            assert_eq!(b.len(), 80);
            let s = stats();
            assert_eq!(s.takes, 1);
            assert_eq!(s.pool_hits, 1);
            assert_eq!(s.fresh_allocs, 0);
            assert_eq!(s.alloc_bytes, 0, "a shrink must not count as growth");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn zeroed_take_is_zero_even_after_reuse() {
        std::thread::spawn(|| {
            {
                let mut a = take_u32(10);
                a.fill(7);
            }
            let b = take_u32_zeroed(10);
            assert!(b.iter().all(|&v| v == 0));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn detach_hands_off_ownership() {
        std::thread::spawn(|| {
            reset_stats();
            let g = take_f32(5);
            let v: Vec<f32> = g.detach();
            assert_eq!(v.len(), 5);
            let s = stats();
            assert_eq!(s.handoffs, 1);
            assert_eq!(s.gives, 0, "a detached buffer never returns to the pool");
            // The next take cannot be served by the detached buffer.
            reset_stats();
            let _again = take_f32(5);
            assert_eq!(stats().fresh_allocs, 1);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn growth_counts_bytes() {
        std::thread::spawn(|| {
            drop(take_u32(4));
            reset_stats();
            let g = take_u32(12); // reuse of the 4-capacity buffer grows it
            assert_eq!(g.len(), 12);
            let s = stats();
            assert_eq!(s.pool_hits, 1);
            assert!(s.alloc_bytes >= 8 * 4, "growth bytes must be counted");
        })
        .join()
        .unwrap();
    }
}
