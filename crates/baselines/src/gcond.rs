//! GCond (Jin et al., ICLR'22) adapted to heterogeneous graphs exactly as
//! the paper's §III-B does for its baseline comparison: "for unlabeled
//! node types, we initialize the hyper-nodes with random sampling from the
//! original nodes".
//!
//! GCond's synthetic-graph machinery works with *dense* buffers (it
//! parameterizes a dense synthetic adjacency and differentiates through
//! full-graph propagation), which is why the paper reports out-of-memory
//! failures on AMiner for r ≥ 0.2% (Table VI, Fig. 8). We reproduce that
//! behaviour with a simulated device-memory budget scaled to our reduced
//! dataset sizes: the dense working set `total_nodes × total_budget × 4`
//! bytes is actually allocated, and condensation fails with
//! [`OutOfMemory`] when it exceeds the budget.

use crate::relay::{gradient_matching_refine_in, GradMatchConfig, GradMatchStats, RelayKind};
use freehgc_hetgraph::{
    induce_selection, proportional_allocation, CondenseContext, CondenseSpec, CondensedGraph,
    Condenser, HeteroGraph,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// Simulated device-memory exhaustion (the "OOM" cells of Table VI).
#[derive(Clone, Copy, Debug)]
pub struct OutOfMemory {
    pub required_bytes: usize,
    pub limit_bytes: usize,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GCond OOM: dense working set needs {} bytes > {} byte budget",
            self.required_bytes, self.limit_bytes
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Default simulated memory budget. The paper's runs use a 24 GB TITAN
/// RTX on graphs 20–135× larger than our scaled ones; 32 MB for the dense
/// synthetic working set preserves which (dataset, ratio) cells of
/// Tables V/VI and Figs. 2b/8 fit and which go OOM.
pub const DEFAULT_MEMORY_LIMIT: usize = 32 << 20;

/// The GCond baseline.
#[derive(Clone, Debug)]
pub struct GCondBaseline {
    pub cfg: GradMatchConfig,
    pub memory_limit_bytes: usize,
}

impl Default for GCondBaseline {
    fn default() -> Self {
        Self {
            cfg: GradMatchConfig {
                relay: RelayKind::Hsgc,
                ops: false,
                relay_samples: 2,
                ..Default::default()
            },
            memory_limit_bytes: DEFAULT_MEMORY_LIMIT,
        }
    }
}

impl GCondBaseline {
    /// Runs GCond, reporting [`OutOfMemory`] when the dense working set
    /// exceeds the simulated device budget.
    pub fn try_condense(
        &self,
        g: &HeteroGraph,
        spec: &CondenseSpec,
    ) -> Result<(CondensedGraph, GradMatchStats), OutOfMemory> {
        self.try_condense_in(&CondenseContext::for_spec(g, spec), spec)
    }

    /// [`GCondBaseline::try_condense`] against a shared
    /// [`CondenseContext`] (reuses the real-side propagated blocks).
    pub fn try_condense_in(
        &self,
        ctx: &CondenseContext<'_>,
        spec: &CondenseSpec,
    ) -> Result<(CondensedGraph, GradMatchStats), OutOfMemory> {
        ctx.check_spec(spec);
        let g = ctx.graph();
        let total_budget: usize = spec.budgets(g).iter().sum();
        let required = g.total_nodes() * total_budget * std::mem::size_of::<f32>();
        if required > self.memory_limit_bytes {
            return Err(OutOfMemory {
                required_bytes: required,
                limit_bytes: self.memory_limit_bytes,
            });
        }
        // GCond's dense synthetic-graph working set (assignment /
        // adjacency buffers); materialized for honest memory behaviour.
        let mut dense = vec![0f32; g.total_nodes() * total_budget];
        // Touch the buffer so the allocation is not optimized away.
        dense[0] = 1.0;
        let _keepalive = &dense;

        // Skeleton: random stratified target + random other types.
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x6c0d);
        let schema = g.schema();
        let target = schema.target();
        let mut keep: Vec<Vec<u32>> = Vec::with_capacity(schema.num_node_types());
        for t in schema.node_type_ids() {
            let budget = spec.budget_for(g.num_nodes(t));
            let mut ids = if t == target {
                let labels = g.labels();
                let mut pools: Vec<Vec<u32>> = vec![Vec::new(); g.num_classes()];
                for &v in &g.split().train {
                    pools[labels[v as usize] as usize].push(v);
                }
                let counts: Vec<usize> = pools.iter().map(|p| p.len()).collect();
                let alloc = proportional_allocation(&counts, budget);
                let mut sel = Vec::with_capacity(budget);
                for (pool, &b) in pools.iter_mut().zip(&alloc) {
                    pool.shuffle(&mut rng);
                    sel.extend(pool.iter().copied().take(b));
                }
                sel
            } else {
                let mut all: Vec<u32> = (0..g.num_nodes(t) as u32).collect();
                all.shuffle(&mut rng);
                all.truncate(budget);
                all
            };
            ids.sort_unstable();
            keep.push(ids);
        }
        let mut cond = induce_selection(g, keep);

        // Bi-level gradient matching on the synthetic target features.
        let stats = gradient_matching_refine_in(ctx, &mut cond, spec, &self.cfg);
        Ok((cond, stats))
    }
}

impl Condenser for GCondBaseline {
    fn name(&self) -> &'static str {
        "GCond"
    }

    /// # Panics
    /// Panics on simulated OOM; use [`GCondBaseline::try_condense`] where
    /// OOM is an expected outcome (Table VI).
    fn condense(&self, g: &HeteroGraph, spec: &CondenseSpec) -> CondensedGraph {
        self.condense_in(&CondenseContext::for_spec(g, spec), spec)
    }

    /// # Panics
    /// Panics on simulated OOM, like [`Condenser::condense`].
    fn condense_in(&self, ctx: &CondenseContext<'_>, spec: &CondenseSpec) -> CondensedGraph {
        match self.try_condense_in(ctx, spec) {
            Ok((cg, _)) => cg,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freehgc_datasets::tiny;

    fn quick_cfg() -> GradMatchConfig {
        GradMatchConfig {
            outer: 3,
            inner: 2,
            relay_samples: 2,
            ..Default::default()
        }
    }

    #[test]
    fn gcond_produces_valid_condensed_graph() {
        let g = tiny(0);
        let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(1);
        let gc = GCondBaseline {
            cfg: quick_cfg(),
            ..Default::default()
        };
        let (cg, stats) = gc.try_condense(&g, &spec).unwrap();
        cg.validate(&g);
        assert_eq!(stats.outer_steps, 3);
        assert!(stats.inner_steps >= 6);
        assert!(stats.final_loss.is_finite());
    }

    #[test]
    fn gcond_refines_target_features() {
        let g = tiny(1);
        let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(2);
        let gc = GCondBaseline {
            cfg: quick_cfg(),
            ..Default::default()
        };
        let (cg, _) = gc.try_condense(&g, &spec).unwrap();
        // Refined features must differ from the raw gathered originals.
        let t = g.schema().target();
        let ids = cg.target_ids();
        let orig = g.features(t).gather(ids);
        assert_ne!(cg.graph.features(t).data(), orig.data());
    }

    #[test]
    fn oom_when_working_set_exceeds_budget() {
        let g = tiny(2);
        let spec = CondenseSpec::new(0.5).with_max_hops(1);
        let gc = GCondBaseline {
            cfg: quick_cfg(),
            memory_limit_bytes: 64, // tiny budget forces OOM
        };
        let err = gc.try_condense(&g, &spec).unwrap_err();
        assert!(err.required_bytes > err.limit_bytes);
        assert!(err.to_string().contains("OOM"));
    }

    #[test]
    fn oom_depends_on_ratio() {
        let g = tiny(3);
        let total = g.total_nodes();
        // Budget that admits r=0.05 but not r=0.5.
        let lo_budget: usize = CondenseSpec::new(0.05).budgets(&g).iter().sum();
        let limit = total * lo_budget * 4 + 1024;
        let gc = GCondBaseline {
            cfg: quick_cfg(),
            memory_limit_bytes: limit,
        };
        assert!(gc
            .try_condense(&g, &CondenseSpec::new(0.05).with_max_hops(1))
            .is_ok());
        assert!(gc
            .try_condense(&g, &CondenseSpec::new(0.5).with_max_hops(1))
            .is_err());
    }
}
