//! Gradient-matching machinery shared by the GCond and HGCond baselines.
//!
//! Both methods follow the bi-level paradigm the paper analyzes in §III:
//! an *inner* loop trains a relay model on the synthetic data, an *outer*
//! loop updates the synthetic target features so the relay's gradient on
//! synthetic data matches its gradient on the real data (GMLoss).
//!
//! The relay's representation uses frozen random projections with a
//! model-specific fusion (mean / semantic attention / gates / two-head),
//! so the gradient of the matching loss with respect to the synthetic
//! features is an ordinary first-order computation: the relay gradient
//! `G = ψᵀ(softmax(ψW) − Y)/n` is *expressed as forward ops* on the tape
//! and differentiated through. This mirrors HGCond's observation that
//! complex relay models do not optimize well (Fig. 2a): richer frozen
//! fusions do not produce better-matched gradients.

use freehgc_autograd::{Adam, Matrix, NodeId, ParamStore, Tape};
use freehgc_hetgraph::{
    enumerate_metapaths, CondenseContext, CondenseSpec, CondensedGraph, FeatureMatrix, HeteroGraph,
    MetaPathEngine,
};
use freehgc_hgnn::propagate_ctx;

/// Relay architectures for the HGCond relay study (Fig. 2a):
/// `Hsgc` is the default (and best, per the paper) relay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelayKind {
    Hsgc,
    SeHgnn,
    Hgb,
    Hgt,
}

impl RelayKind {
    pub fn name(self) -> &'static str {
        match self {
            RelayKind::Hsgc => "HSGC",
            RelayKind::SeHgnn => "SeHGNN",
            RelayKind::Hgb => "HGB",
            RelayKind::Hgt => "HGT",
        }
    }
}

/// Bi-level optimization knobs.
#[derive(Clone, Debug)]
pub struct GradMatchConfig {
    pub relay: RelayKind,
    /// Outer iterations (synthetic-feature updates).
    pub outer: usize,
    /// Inner relay-training steps per outer iteration.
    pub inner: usize,
    /// Number of relay parameter samples (GCond's K initializations /
    /// HGCond's orthogonal parameter sequences).
    pub relay_samples: usize,
    /// Enable HGCond's orthogonal-parameter-sequence exploration.
    pub ops: bool,
    pub lr_feat: f32,
    pub lr_relay: f32,
    /// Frozen projection width of the relay representation.
    pub hidden: usize,
    /// Meta-path cap (must match between real and synthetic sides).
    pub max_paths: usize,
}

impl Default for GradMatchConfig {
    fn default() -> Self {
        Self {
            relay: RelayKind::Hsgc,
            outer: 24,
            inner: 4,
            relay_samples: 2,
            ops: false,
            lr_feat: 0.05,
            lr_relay: 0.05,
            hidden: 32,
            max_paths: 12,
        }
    }
}

/// How one propagated block of the *synthetic* graph depends on the
/// synthetic target features `X`.
pub enum SynBlock {
    /// Block 0: the raw features, `X` itself.
    Raw,
    /// A meta-path returning to the target type: `M · X` with a constant
    /// (dense, condensed-size) propagation matrix.
    Linear(Matrix),
    /// A path ending at another type: constant.
    Const(Matrix),
}

/// Builds the synthetic-side block plan for the condensed graph.
pub fn syn_block_plan(cond: &HeteroGraph, max_hops: usize, max_paths: usize) -> Vec<SynBlock> {
    let schema = cond.schema();
    let target = schema.target();
    let n = cond.num_nodes(target);
    let paths = enumerate_metapaths(schema, target, max_hops, max_paths);
    let mut engine = MetaPathEngine::new(cond);
    let mut plan = Vec::with_capacity(paths.len() + 1);
    plan.push(SynBlock::Raw);
    for p in &paths {
        if p.source() == target {
            let m = engine.adjacency(p);
            plan.push(SynBlock::Linear(Matrix::from_vec(n, n, m.to_dense())));
        } else {
            let adj = engine.adjacency(p);
            let f = cond.features(p.source());
            let data = adj.spmm_dense(f.data(), f.dim());
            plan.push(SynBlock::Const(Matrix::from_vec(n, f.dim(), data)));
        }
    }
    plan
}

/// Frozen relay: random projections and fusion parameters that stay fixed
/// during condensation (only the classifier `W` is trained in the inner
/// loop).
pub struct FrozenRelay {
    kind: RelayKind,
    proj: Vec<Matrix>,
    q1: Matrix,
    q2: Matrix,
    gates: Matrix,
    hidden: usize,
}

impl FrozenRelay {
    pub fn new(kind: RelayKind, block_dims: &[usize], hidden: usize, seed: u64) -> Self {
        let proj = block_dims
            .iter()
            .enumerate()
            .map(|(i, &d)| Matrix::xavier(d, hidden, seed.wrapping_add(11 * i as u64 + 1)))
            .collect();
        Self {
            kind,
            proj,
            q1: Matrix::xavier(hidden, 1, seed ^ 0xf1),
            q2: Matrix::xavier(hidden, 1, seed ^ 0xf2),
            gates: {
                // Pre-computed sigmoid gates in (0,1).
                let mut m = Matrix::xavier(1, block_dims.len(), seed ^ 0xf3);
                for v in m.data.iter_mut() {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
                m
            },
            hidden,
        }
    }

    /// Representation `ψ(blocks)` on the tape.
    pub fn repr(&self, tape: &mut Tape, blocks: &[NodeId]) -> NodeId {
        assert_eq!(blocks.len(), self.proj.len(), "block count mismatch");
        let hs: Vec<NodeId> = blocks
            .iter()
            .zip(&self.proj)
            .map(|(&b, p)| {
                let pn = tape.constant(p.clone());
                tape.matmul(b, pn)
            })
            .collect();
        match self.kind {
            RelayKind::Hsgc => {
                // Linear mean fusion — the "simplest" relay.
                let s = tape.add_n(&hs);
                tape.scale(s, 1.0 / hs.len() as f32)
            }
            RelayKind::SeHgnn => {
                let q = tape.constant(self.q1.clone());
                let scores: Vec<NodeId> = hs
                    .iter()
                    .map(|&h| {
                        let t = tape.tanh(h);
                        let m = mean_rows(tape, t);
                        tape.matmul(m, q)
                    })
                    .collect();
                let cat = tape.concat_cols(&scores);
                let alpha = tape.softmax_rows(cat);
                let fused = tape.weighted_sum(&hs, alpha);
                tape.relu(fused)
            }
            RelayKind::Hgb => {
                let gates = tape.constant(self.gates.clone());
                let fused = tape.weighted_sum(&hs, gates);
                tape.relu(fused)
            }
            RelayKind::Hgt => {
                let inv = 1.0 / (self.hidden as f32).sqrt();
                let head = |tape: &mut Tape, q: &Matrix| {
                    let qn = tape.constant(q.clone());
                    let scores: Vec<NodeId> = hs
                        .iter()
                        .map(|&h| {
                            let m = mean_rows(tape, h);
                            let s = tape.matmul(m, qn);
                            tape.scale(s, inv)
                        })
                        .collect();
                    let cat = tape.concat_cols(&scores);
                    let alpha = tape.softmax_rows(cat);
                    tape.weighted_sum(&hs, alpha)
                };
                let h1 = head(tape, &self.q1);
                let h2 = head(tape, &self.q2);
                let sum = tape.add(h1, h2);
                let half = tape.scale(sum, 0.5);
                let res = tape.add_n(&hs);
                let res = tape.scale(res, 1.0 / hs.len() as f32);
                let mixed = tape.add(half, res);
                tape.relu(mixed)
            }
        }
    }
}

fn mean_rows(tape: &mut Tape, h: NodeId) -> NodeId {
    let n = tape.value(h).rows;
    let ones = tape.constant(Matrix::from_vec(1, n, vec![1.0 / n.max(1) as f32; n]));
    tape.matmul(ones, h)
}

/// One-hot label matrix.
pub fn one_hot(labels: &[u32], num_classes: usize) -> Matrix {
    let mut m = Matrix::zeros(labels.len(), num_classes);
    for (r, &y) in labels.iter().enumerate() {
        m.set(r, y as usize, 1.0);
    }
    m
}

/// Relay gradient `G = ψᵀ (softmax(ψW) − Y) / n` as a tape node —
/// differentiable through `ψ`.
pub fn relay_grad_node(tape: &mut Tape, psi: NodeId, w: NodeId, y_onehot: &Matrix) -> NodeId {
    let n = y_onehot.rows.max(1) as f32;
    let logits = tape.matmul(psi, w);
    let probs = tape.softmax_rows(logits);
    let y = tape.constant(y_onehot.clone());
    let r = tape.sub(probs, y);
    let r = tape.scale(r, 1.0 / n);
    tape.matmul_tn(psi, r)
}

/// In-place Gram–Schmidt orthogonalization of flattened weight matrices —
/// HGCond's orthogonal parameter sequences (OPS).
pub fn orthogonalize(ws: &mut [Matrix]) {
    for i in 0..ws.len() {
        for j in 0..i {
            let dot: f32 = ws[i].data.iter().zip(&ws[j].data).map(|(a, b)| a * b).sum();
            let nj: f32 = ws[j].data.iter().map(|v| v * v).sum();
            if nj > 1e-12 {
                let f = dot / nj;
                // Split borrow: j < i.
                let (left, right) = ws.split_at_mut(i);
                for (a, b) in right[0].data.iter_mut().zip(&left[j].data) {
                    *a -= f * b;
                }
            }
        }
        let norm: f32 = ws[i].data.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for v in ws[i].data.iter_mut() {
                *v /= norm;
            }
        }
    }
}

/// Statistics of a gradient-matching run (time accounting for Fig. 2b/8).
#[derive(Clone, Debug)]
pub struct GradMatchStats {
    pub outer_steps: usize,
    pub inner_steps: usize,
    pub final_loss: f32,
}

/// The bi-level gradient-matching refinement: updates the condensed
/// graph's target-type features so relay gradients match the real graph's.
pub fn gradient_matching_refine(
    real: &HeteroGraph,
    cond: &mut CondensedGraph,
    spec: &CondenseSpec,
    cfg: &GradMatchConfig,
) -> GradMatchStats {
    gradient_matching_refine_in(&CondenseContext::for_spec(real, spec), cond, spec, cfg)
}

/// [`gradient_matching_refine`] against a shared [`CondenseContext`] for
/// the *real* graph: the real-side propagated blocks — the only
/// full-graph-sized cost of the bi-level loop — come from the context's
/// `(max_hops, max_paths)` cache, so repeated GCond/HGCond runs (ratio
/// and seed sweeps, the Fig. 2a relay study) propagate once. The
/// synthetic side is per-condensed-graph and stays uncached.
pub fn gradient_matching_refine_in(
    ctx: &CondenseContext<'_>,
    cond: &mut CondensedGraph,
    spec: &CondenseSpec,
    cfg: &GradMatchConfig,
) -> GradMatchStats {
    ctx.check_spec(spec);
    let real = ctx.graph();
    let target = real.schema().target();
    let num_classes = real.num_classes();

    // Real side: propagated blocks gathered on the training split.
    let pf_real = propagate_ctx(ctx, spec.max_hops, cfg.max_paths);
    let train = &real.split().train;
    let real_blocks: Vec<Matrix> = pf_real.gather(train);
    let y_real: Vec<u32> = train.iter().map(|&v| real.labels()[v as usize]).collect();
    let y_real_oh = one_hot(&y_real, num_classes);

    // Synthetic side: block plan over the condensed graph.
    let plan = syn_block_plan(&cond.graph, spec.max_hops, cfg.max_paths);
    assert_eq!(
        plan.len(),
        real_blocks.len(),
        "real/synthetic block plans must align"
    );
    let y_syn = cond.graph.labels().to_vec();
    let y_syn_oh = one_hot(&y_syn, num_classes);
    let dims: Vec<usize> = real_blocks.iter().map(|b| b.cols).collect();

    let relay = FrozenRelay::new(cfg.relay, &dims, cfg.hidden, spec.seed ^ 0x6e55);

    // Synthetic target features are the optimized parameter.
    let x0 = cond.graph.features(target);
    let mut xstore = ParamStore::new();
    let x_id = xstore.add(Matrix::from_vec(
        x0.num_rows(),
        x0.dim(),
        x0.data().to_vec(),
    ));
    let mut adam_x = Adam::new(cfg.lr_feat);

    // Relay parameter samples.
    let mut w_samples: Vec<Matrix> = (0..cfg.relay_samples.max(1))
        .map(|s| {
            Matrix::xavier(
                cfg.hidden,
                num_classes,
                spec.seed.wrapping_add(97 * s as u64),
            )
        })
        .collect();
    if cfg.ops {
        orthogonalize(&mut w_samples);
    }
    let mut adam_w: Vec<Adam> = w_samples.iter().map(|_| Adam::new(cfg.lr_relay)).collect();

    let mut inner_steps = 0usize;
    let mut final_loss = f32::NAN;
    for _outer in 0..cfg.outer {
        // Real representation is recomputed every outer iteration, as the
        // actual bi-level implementations do — this is the size-dependent
        // cost that makes these methods slow on large graphs (Fig. 2b).
        let mut tr = Tape::new();
        let rb: Vec<NodeId> = real_blocks.iter().map(|b| tr.constant(b.clone())).collect();
        let psi_real_node = relay.repr(&mut tr, &rb);
        let psi_real = tr.value(psi_real_node).clone();

        // Current synthetic ψ for the inner relay training.
        let psi_syn_now = {
            let mut ts = Tape::new();
            let x = ts.param(&xstore, x_id);
            let bn = plan_nodes(&mut ts, &plan, x);
            let node = relay.repr(&mut ts, &bn);
            ts.value(node).clone()
        };

        for (s, w) in w_samples.iter_mut().enumerate() {
            // Inner loop: train the relay classifier on synthetic data.
            for _ in 0..cfg.inner {
                inner_steps += 1;
                let mut t = Tape::new();
                let mut ws = ParamStore::new();
                let wid = ws.add(w.clone());
                let psi = t.constant(psi_syn_now.clone());
                let wn = t.param(&ws, wid);
                let logits = t.matmul(psi, wn);
                let loss = t.cross_entropy_mean(logits, &y_syn);
                let grads = t.backward(loss);
                ws.zero_grads();
                t.accumulate_param_grads(&grads, &mut ws);
                adam_w[s].step(&mut ws);
                *w = ws.value(wid).clone();
            }
        }
        if cfg.ops {
            orthogonalize(&mut w_samples);
        }

        // Outer step: match gradients across all relay samples.
        let mut t = Tape::new();
        let x = t.param(&xstore, x_id);
        let bn = plan_nodes(&mut t, &plan, x);
        let psi_syn = relay.repr(&mut t, &bn);
        let mut losses = Vec::with_capacity(w_samples.len());
        for w in &w_samples {
            // G_real for this sample (constant wrt X).
            let g_real = {
                let mut tg = Tape::new();
                let p = tg.constant(psi_real.clone());
                let wn = tg.constant(w.clone());
                let g = relay_grad_node(&mut tg, p, wn, &y_real_oh);
                tg.value(g).clone()
            };
            let wn = t.constant(w.clone());
            let g_syn = relay_grad_node(&mut t, psi_syn, wn, &y_syn_oh);
            let gr = t.constant(g_real);
            let diff = t.sub(g_syn, gr);
            losses.push(t.sum_squares(diff));
        }
        let total = t.add_n(&losses);
        final_loss = t.value(total).get(0, 0);
        let grads = t.backward(total);
        xstore.zero_grads();
        t.accumulate_param_grads(&grads, &mut xstore);
        adam_x.step(&mut xstore);
    }

    // Write refined features back into the condensed graph.
    let xv = xstore.value(x_id);
    cond.graph
        .set_features(target, FeatureMatrix::from_rows(xv.cols, xv.data.clone()));
    GradMatchStats {
        outer_steps: cfg.outer,
        inner_steps,
        final_loss,
    }
}

fn plan_nodes(tape: &mut Tape, plan: &[SynBlock], x: NodeId) -> Vec<NodeId> {
    plan.iter()
        .map(|b| match b {
            SynBlock::Raw => x,
            SynBlock::Linear(m) => {
                let mn = tape.constant(m.clone());
                tape.matmul(mn, x)
            }
            SynBlock::Const(c) => tape.constant(c.clone()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthogonalize_produces_orthonormal_set() {
        let mut ws = vec![
            Matrix::xavier(3, 2, 1),
            Matrix::xavier(3, 2, 2),
            Matrix::xavier(3, 2, 3),
        ];
        orthogonalize(&mut ws);
        for i in 0..3 {
            let ni: f32 = ws[i].data.iter().map(|v| v * v).sum();
            assert!((ni - 1.0).abs() < 1e-4, "norm {ni}");
            for j in 0..i {
                let dot: f32 = ws[i].data.iter().zip(&ws[j].data).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < 1e-4, "dot({i},{j}) = {dot}");
            }
        }
    }

    #[test]
    fn one_hot_rows() {
        let m = one_hot(&[1, 0, 2], 3);
        assert_eq!(m.row(0), &[0.0, 1.0, 0.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
        assert_eq!(m.row(2), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn relay_grad_matches_manual_computation() {
        // ψ fixed; G = ψᵀ(softmax(ψW) − Y)/n computed two ways.
        let psi_m = Matrix::xavier(4, 3, 5);
        let w_m = Matrix::xavier(3, 2, 6);
        let y = one_hot(&[0, 1, 0, 1], 2);
        let mut t = Tape::new();
        let psi = t.constant(psi_m.clone());
        let w = t.constant(w_m.clone());
        let g = relay_grad_node(&mut t, psi, w, &y);
        let manual = {
            let probs = psi_m.matmul(&w_m).softmax_rows();
            let r = probs.sub(&y).scale(1.0 / 4.0);
            psi_m.matmul_tn(&r)
        };
        for (a, b) in t.value(g).data.iter().zip(&manual.data) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn frozen_relays_produce_distinct_representations() {
        let blocks = [Matrix::xavier(5, 4, 7), Matrix::xavier(5, 3, 8)];
        let mut outs = Vec::new();
        for kind in [
            RelayKind::Hsgc,
            RelayKind::SeHgnn,
            RelayKind::Hgb,
            RelayKind::Hgt,
        ] {
            let relay = FrozenRelay::new(kind, &[4, 3], 8, 42);
            let mut t = Tape::new();
            let bn: Vec<NodeId> = blocks.iter().map(|b| t.constant(b.clone())).collect();
            let psi = relay.repr(&mut t, &bn);
            assert_eq!(t.value(psi).shape(), (5, 8), "{kind:?}");
            outs.push(t.value(psi).data.clone());
        }
        for i in 0..outs.len() {
            for j in i + 1..outs.len() {
                assert_ne!(outs[i], outs[j], "relays {i}/{j} coincide");
            }
        }
    }
}

#[cfg(test)]
mod refine_tests {
    use super::*;
    use freehgc_datasets::tiny;
    use freehgc_hetgraph::induce_selection;
    use freehgc_hgnn::propagate;

    fn quick_cfg(outer: usize) -> GradMatchConfig {
        GradMatchConfig {
            outer,
            inner: 2,
            relay_samples: 2,
            ..Default::default()
        }
    }

    /// Real and synthetic block plans must align one-to-one — the
    /// precondition for the matching loss to be meaningful.
    #[test]
    fn syn_block_plan_aligns_with_propagation() {
        let g = tiny(0);
        let keep: Vec<Vec<u32>> = g
            .schema()
            .node_type_ids()
            .map(|t| (0..(g.num_nodes(t) as u32 / 2).max(2)).collect())
            .collect();
        let cond = induce_selection(&g, keep);
        let plan = syn_block_plan(&cond.graph, 2, 12);
        let pf = propagate(&g, 2, 12);
        assert_eq!(plan.len(), pf.blocks.len());
        // Dimensions agree per block.
        let t = g.schema().target();
        for (i, b) in plan.iter().enumerate() {
            let dim = match b {
                SynBlock::Raw => cond.graph.features(t).dim(),
                SynBlock::Linear(m) => {
                    assert_eq!(m.rows, cond.graph.num_nodes(t));
                    cond.graph.features(t).dim()
                }
                SynBlock::Const(c) => c.cols,
            };
            assert_eq!(dim, pf.blocks[i].cols, "block {i} dim mismatch");
        }
    }

    /// More outer iterations must not blow up the matching loss; the
    /// refined features stay finite.
    #[test]
    fn refinement_is_stable() {
        let g = tiny(1);
        let spec = freehgc_hetgraph::CondenseSpec::new(0.25)
            .with_max_hops(2)
            .with_seed(3);
        let keep: Vec<Vec<u32>> = g
            .schema()
            .node_type_ids()
            .map(|t| (0..spec.budget_for(g.num_nodes(t)) as u32).collect())
            .collect();
        let mut cond = induce_selection(&g, keep);
        let stats = gradient_matching_refine(&g, &mut cond, &spec, &quick_cfg(8));
        assert!(stats.final_loss.is_finite());
        let t = g.schema().target();
        assert!(cond.graph.features(t).data().iter().all(|v| v.is_finite()));
    }

    /// The inner loop actually trains the relay: with more inner steps the
    /// relay CE on synthetic data is lower, observable via lower final
    /// gradient-matching loss variance. We assert the bookkeeping instead:
    /// inner_steps = outer × samples × inner.
    #[test]
    fn inner_step_accounting() {
        let g = tiny(2);
        let spec = freehgc_hetgraph::CondenseSpec::new(0.25)
            .with_max_hops(2)
            .with_seed(4);
        let keep: Vec<Vec<u32>> = g
            .schema()
            .node_type_ids()
            .map(|t| (0..spec.budget_for(g.num_nodes(t)) as u32).collect())
            .collect();
        let mut cond = induce_selection(&g, keep);
        let cfg = quick_cfg(5);
        let stats = gradient_matching_refine(&g, &mut cond, &spec, &cfg);
        assert_eq!(stats.outer_steps, 5);
        assert_eq!(stats.inner_steps, 5 * cfg.relay_samples * cfg.inner);
    }
}
