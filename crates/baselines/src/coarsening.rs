//! Coarsening-HG: a variation-neighborhoods-style coarsening baseline
//! (paper §V-A, adapted from Huang et al., KDD'21).
//!
//! Variation-neighborhoods coarsening contracts nodes whose neighborhoods
//! are nearly interchangeable. We approximate the contraction sets
//! cheaply: nodes of each type are ordered by a neighborhood signature
//! (degree, then smallest neighbor ids) so that structurally similar nodes
//! are adjacent in the order, then consecutive runs are contracted into
//! super-nodes whose features are member means. The target type keeps one
//! *representative* node per (class-pure) group — labels must remain
//! well-defined — while unlabeled types become true super-nodes.

use freehgc_hetgraph::condense::{assemble, SynthesizedNodes, TypePlan};
use freehgc_hetgraph::{
    proportional_allocation, CondenseSpec, CondensedGraph, Condenser, FeatureMatrix, HeteroGraph,
    NodeTypeId,
};

/// Neighborhood signature used to order nodes before contraction:
/// (degree over all relations, first three neighbor ids of the first
/// incident relation).
fn signature(g: &HeteroGraph, t: NodeTypeId, v: u32) -> (usize, [u32; 3]) {
    let schema = g.schema();
    let mut deg = 0usize;
    let mut first3 = [u32::MAX; 3];
    let mut filled = 0usize;
    for (e, forward) in schema.incident_edges(t) {
        let adj = g.adjacency(e);
        let row: Vec<u32> = if forward {
            adj.row_indices(v as usize).to_vec()
        } else {
            // Reverse orientation: scan is too costly; use the transpose
            // lazily per edge type via in-degree only.
            Vec::new()
        };
        deg += if forward { adj.row_nnz(v as usize) } else { 0 };
        for &n in &row {
            if filled < 3 {
                first3[filled] = n;
                filled += 1;
            }
        }
    }
    (deg, first3)
}

/// Groups `pool` into at most `groups` contraction sets of consecutive
/// signature-ordered nodes.
fn contract(g: &HeteroGraph, t: NodeTypeId, pool: &[u32], groups: usize) -> Vec<Vec<u32>> {
    if pool.is_empty() || groups == 0 {
        return Vec::new();
    }
    let mut order: Vec<u32> = pool.to_vec();
    order.sort_by_key(|&v| (signature(g, t, v), v));
    let groups = groups.min(order.len());
    let per = order.len().div_ceil(groups);
    order.chunks(per).map(|c| c.to_vec()).collect()
}

/// The coarsening baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoarseningHg;

impl Condenser for CoarseningHg {
    fn name(&self) -> &'static str {
        "Coarsening-HG"
    }

    fn condense(&self, g: &HeteroGraph, spec: &CondenseSpec) -> CondensedGraph {
        let schema = g.schema();
        let target = schema.target();
        let labels = g.labels();
        let mut plans: Vec<TypePlan> = Vec::with_capacity(schema.num_node_types());
        for t in schema.node_type_ids() {
            let budget = spec.budget_for(g.num_nodes(t));
            if t == target {
                // Class-pure groups; keep the medoid-ish representative
                // (first of each contraction set) so labels stay exact.
                let mut pools: Vec<Vec<u32>> = vec![Vec::new(); g.num_classes()];
                for &v in &g.split().train {
                    pools[labels[v as usize] as usize].push(v);
                }
                let counts: Vec<usize> = pools.iter().map(|p| p.len()).collect();
                let alloc = proportional_allocation(&counts, budget);
                let mut reps = Vec::with_capacity(budget);
                for (pool, &b) in pools.iter().zip(&alloc) {
                    for group in contract(g, t, pool, b) {
                        reps.push(group[0]);
                    }
                }
                reps.sort_unstable();
                plans.push(TypePlan::Selected(reps));
            } else {
                let all: Vec<u32> = (0..g.num_nodes(t) as u32).collect();
                let groups = contract(g, t, &all, budget);
                let feat = g.features(t);
                let mut fm = FeatureMatrix::zeros(0, feat.dim());
                for grp in &groups {
                    fm.push_row(&feat.mean_of(grp));
                }
                plans.push(TypePlan::Synthesized(SynthesizedNodes {
                    members: groups,
                    features: fm,
                }));
            }
        }
        assemble(g, &plans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freehgc_datasets::tiny;
    use freehgc_hetgraph::Role;

    #[test]
    fn coarsening_respects_budgets_and_synthesizes_others() {
        let g = tiny(0);
        let spec = CondenseSpec::new(0.2).with_max_hops(2);
        let cg = CoarseningHg.condense(&g, &spec);
        cg.validate(&g);
        for t in g.schema().node_type_ids() {
            assert!(cg.graph.num_nodes(t) <= spec.budget_for(g.num_nodes(t)));
            if t != g.schema().target() {
                assert!(cg.orig_ids[t.0 as usize].is_none(), "type {t:?} selected");
            }
        }
        assert!(cg.graph.total_edges() > 0);
    }

    #[test]
    fn contraction_covers_every_node() {
        let g = tiny(1);
        let t = g.schema().types_with_role(Role::Father)[0];
        let all: Vec<u32> = (0..g.num_nodes(t) as u32).collect();
        let groups = contract(&g, t, &all, 5);
        assert!(groups.len() <= 5);
        let mut covered: Vec<u32> = groups.into_iter().flatten().collect();
        covered.sort_unstable();
        assert_eq!(covered, all);
    }

    #[test]
    fn target_labels_remain_exact() {
        let g = tiny(2);
        let spec = CondenseSpec::new(0.3).with_max_hops(2);
        let cg = CoarseningHg.condense(&g, &spec);
        for (k, &orig) in cg.target_ids().iter().enumerate() {
            assert_eq!(cg.graph.labels()[k], g.labels()[orig as usize]);
        }
    }
}
