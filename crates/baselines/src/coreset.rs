//! Coreset baselines: Random-HG, Herding-HG and K-Center-HG (paper §V-A).
//!
//! The paper adapts three homogeneous coreset methods to heterogeneous
//! graphs: the target type is selected from the training pool using
//! HGNN-style *intermediate embeddings* (we use the SeHGNN pre-propagated
//! meta-path blocks, concatenated), while unlabeled types are selected on
//! their raw features. Selection is class-stratified for the target type,
//! matching the class-proportional budget protocol of §V-B.

use freehgc_core::herding::herding_select;
use freehgc_hetgraph::{
    induce_selection, proportional_allocation, CondenseContext, CondenseSpec, CondensedGraph,
    Condenser, FeatureMatrix, HeteroGraph,
};
use freehgc_hgnn::propagate_ctx;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Concatenated meta-path propagated embeddings of the target type — the
/// "intermediate embeddings from SeHGNN" the paper feeds the coreset
/// methods.
pub fn target_embeddings(g: &HeteroGraph, max_hops: usize, max_paths: usize) -> FeatureMatrix {
    target_embeddings_in(&CondenseContext::new(g), max_hops, max_paths)
}

/// [`target_embeddings`] against a shared [`CondenseContext`]: the
/// propagated blocks come from the context's `(max_hops, max_paths)`
/// cache, so herding and k-center selection at several ratios (or after
/// an eval pass over the same graph) pay for propagation once.
pub fn target_embeddings_in(
    ctx: &CondenseContext<'_>,
    max_hops: usize,
    max_paths: usize,
) -> FeatureMatrix {
    let pf = propagate_ctx(ctx, max_hops, max_paths);
    let dim: usize = pf.blocks.iter().map(|b| b.cols).sum();
    let n = pf.num_rows();
    let mut data = Vec::with_capacity(n * dim);
    for r in 0..n {
        for b in &pf.blocks {
            data.extend_from_slice(b.row(r));
        }
    }
    FeatureMatrix::from_rows(dim, data)
}

/// Per-class training pools and proportional budgets.
fn class_pools(g: &HeteroGraph, budget: usize) -> (Vec<Vec<u32>>, Vec<usize>) {
    let labels = g.labels();
    let mut pools: Vec<Vec<u32>> = vec![Vec::new(); g.num_classes()];
    for &v in &g.split().train {
        pools[labels[v as usize] as usize].push(v);
    }
    let counts: Vec<usize> = pools.iter().map(|p| p.len()).collect();
    let total: usize = counts.iter().sum();
    let alloc = proportional_allocation(&counts, budget.min(total));
    (pools, alloc)
}

/// Shared scaffold: pick target ids with `select_target`, other-type ids
/// with `select_other`, then induce.
fn condense_with<FT, FO>(
    g: &HeteroGraph,
    spec: &CondenseSpec,
    mut select_target: FT,
    mut select_other: FO,
) -> CondensedGraph
where
    FT: FnMut(&HeteroGraph, usize) -> Vec<u32>,
    FO: FnMut(&HeteroGraph, freehgc_hetgraph::NodeTypeId, usize) -> Vec<u32>,
{
    let schema = g.schema();
    let target = schema.target();
    let mut keep: Vec<Vec<u32>> = Vec::with_capacity(schema.num_node_types());
    for t in schema.node_type_ids() {
        let budget = spec.budget_for(g.num_nodes(t));
        let ids = if t == target {
            let mut ids = select_target(g, budget);
            ids.sort_unstable();
            ids
        } else {
            let mut ids = select_other(g, t, budget);
            ids.sort_unstable();
            ids
        };
        keep.push(ids);
    }
    induce_selection(g, keep)
}

/// Uniform random selection (class-stratified on the target type).
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomHg;

impl Condenser for RandomHg {
    fn name(&self) -> &'static str {
        "Random-HG"
    }

    fn condense(&self, g: &HeteroGraph, spec: &CondenseSpec) -> CondensedGraph {
        // Separate deterministic streams so the closures don't contend for
        // one generator.
        let mut rng_t = StdRng::seed_from_u64(spec.seed ^ 0x5eed);
        let mut rng_o = StdRng::seed_from_u64(spec.seed ^ 0x07e4);
        condense_with(
            g,
            spec,
            |g, budget| {
                let (pools, alloc) = class_pools(g, budget);
                let mut sel = Vec::with_capacity(budget);
                for (pool, &b) in pools.iter().zip(&alloc) {
                    let mut p = pool.clone();
                    p.shuffle(&mut rng_t);
                    sel.extend(p.into_iter().take(b));
                }
                sel
            },
            |g, t, budget| {
                let mut all: Vec<u32> = (0..g.num_nodes(t) as u32).collect();
                all.shuffle(&mut rng_o);
                all.truncate(budget);
                all
            },
        )
    }
}

/// Herding on intermediate embeddings (target) / raw features (others).
#[derive(Clone, Copy, Debug, Default)]
pub struct HerdingHg;

impl Condenser for HerdingHg {
    fn name(&self) -> &'static str {
        "Herding-HG"
    }

    fn condense(&self, g: &HeteroGraph, spec: &CondenseSpec) -> CondensedGraph {
        self.condense_in(&CondenseContext::for_spec(g, spec), spec)
    }

    fn condense_in(&self, ctx: &CondenseContext<'_>, spec: &CondenseSpec) -> CondensedGraph {
        ctx.check_spec(spec);
        let emb = target_embeddings_in(ctx, spec.max_hops, spec.max_paths);
        condense_with(
            ctx.graph(),
            spec,
            |g, budget| {
                let (pools, alloc) = class_pools(g, budget);
                let mut sel = Vec::with_capacity(budget);
                for (pool, &b) in pools.iter().zip(&alloc) {
                    sel.extend(herding_select(&emb, pool, b));
                }
                sel
            },
            |g, t, budget| {
                let all: Vec<u32> = (0..g.num_nodes(t) as u32).collect();
                herding_select(g.features(t), &all, budget)
            },
        )
    }
}

/// Greedy k-center (max-min distance) selection.
pub fn kcenter_select(feat: &FeatureMatrix, pool: &[u32], budget: usize) -> Vec<u32> {
    let budget = budget.min(pool.len());
    if budget == 0 {
        return Vec::new();
    }
    // Seed with the node closest to the pool mean (deterministic).
    let mut mu = vec![0f64; feat.dim()];
    for &p in pool {
        for (a, &v) in mu.iter_mut().zip(feat.row(p as usize)) {
            *a += v as f64;
        }
    }
    for a in mu.iter_mut() {
        *a /= pool.len() as f64;
    }
    let dist_to_mu = |p: u32| -> f64 {
        feat.row(p as usize)
            .iter()
            .zip(&mu)
            .map(|(&x, m)| (x as f64 - m) * (x as f64 - m))
            .sum()
    };
    let first = *pool
        .iter()
        .min_by(|&&a, &&b| dist_to_mu(a).partial_cmp(&dist_to_mu(b)).unwrap())
        .unwrap();
    let mut selected = vec![first];
    // min-distance of each pool node to the selected set
    let mut mind: Vec<f32> = pool
        .iter()
        .map(|&p| feat.dist2(p as usize, first as usize))
        .collect();
    while selected.len() < budget {
        let (bi, _) = mind
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let chosen = pool[bi];
        selected.push(chosen);
        for (d, &p) in mind.iter_mut().zip(pool) {
            let nd = feat.dist2(p as usize, chosen as usize);
            if nd < *d {
                *d = nd;
            }
        }
    }
    selected.sort_unstable();
    selected
}

/// K-Center on intermediate embeddings (target) / raw features (others).
#[derive(Clone, Copy, Debug, Default)]
pub struct KCenterHg;

impl Condenser for KCenterHg {
    fn name(&self) -> &'static str {
        "K-Center-HG"
    }

    fn condense(&self, g: &HeteroGraph, spec: &CondenseSpec) -> CondensedGraph {
        self.condense_in(&CondenseContext::for_spec(g, spec), spec)
    }

    fn condense_in(&self, ctx: &CondenseContext<'_>, spec: &CondenseSpec) -> CondensedGraph {
        ctx.check_spec(spec);
        let emb = target_embeddings_in(ctx, spec.max_hops, spec.max_paths);
        condense_with(
            ctx.graph(),
            spec,
            |g, budget| {
                let (pools, alloc) = class_pools(g, budget);
                let mut sel = Vec::with_capacity(budget);
                for (pool, &b) in pools.iter().zip(&alloc) {
                    sel.extend(kcenter_select(&emb, pool, b));
                }
                sel
            },
            |g, t, budget| {
                let all: Vec<u32> = (0..g.num_nodes(t) as u32).collect();
                kcenter_select(g.features(t), &all, budget)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freehgc_datasets::tiny;

    #[test]
    fn all_coresets_respect_budgets() {
        let g = tiny(0);
        let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(1);
        for c in [&RandomHg as &dyn Condenser, &HerdingHg, &KCenterHg] {
            let cg = c.condense(&g, &spec);
            cg.validate(&g);
            for t in g.schema().node_type_ids() {
                assert!(
                    cg.graph.num_nodes(t) <= spec.budget_for(g.num_nodes(t)),
                    "{} type {t:?}",
                    c.name()
                );
            }
        }
    }

    #[test]
    fn target_selection_stays_in_train_pool() {
        let g = tiny(1);
        let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(2);
        for c in [&RandomHg as &dyn Condenser, &HerdingHg, &KCenterHg] {
            let cg = c.condense(&g, &spec);
            for id in cg.target_ids() {
                assert!(g.split().train.contains(id), "{}: {id}", c.name());
            }
        }
    }

    #[test]
    fn kcenter_spreads_selection() {
        // Two far clusters: k-center with k=2 must take one from each.
        let rows = vec![0.0, 0.0, 0.1, 0.0, 100.0, 100.0, 100.1, 100.0];
        let f = FeatureMatrix::from_rows(2, rows);
        let sel = kcenter_select(&f, &[0, 1, 2, 3], 2);
        let left = sel.iter().filter(|&&s| s < 2).count();
        let right = sel.len() - left;
        assert_eq!((left, right), (1, 1), "{sel:?}");
    }

    #[test]
    fn random_is_seed_deterministic() {
        let g = tiny(3);
        let spec = CondenseSpec::new(0.15).with_max_hops(1).with_seed(7);
        let a = RandomHg.condense(&g, &spec);
        let b = RandomHg.condense(&g, &spec);
        assert_eq!(a.target_ids(), b.target_ids());
        let spec2 = spec.clone().with_seed(8);
        let c = RandomHg.condense(&g, &spec2);
        assert_ne!(a.target_ids(), c.target_ids());
    }

    #[test]
    fn embeddings_have_expected_shape() {
        let g = tiny(4);
        let emb = target_embeddings(&g, 2, 16);
        assert_eq!(emb.num_rows(), g.num_nodes(g.schema().target()));
        assert!(emb.dim() > g.features(g.schema().target()).dim());
    }
}
