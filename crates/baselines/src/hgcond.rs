//! HGCond (Gao et al., TKDE'24) — the state-of-the-art heterogeneous
//! graph condensation baseline the paper compares against.
//!
//! Structure (paper §II-C, §III): k-means clustering initializes
//! hyper-nodes for every unlabeled node type ("clustering information
//! instead of label information"), a sparse connection scheme links
//! hyper-nodes whose members were connected (our membership-rule
//! assembly), and a bi-level loop with **orthogonal parameter sequences**
//! (OPS) optimizes the synthetic target features by gradient matching
//! against a HeteroSGC relay. The relay model is pluggable
//! ([`HGCondBaseline::with_relay`]) to reproduce the Fig. 2a study where
//! stronger relays (HGT / HGB / SeHGNN) fail to improve condensation.

use crate::cluster::{kmeans, medoid};
use crate::relay::{gradient_matching_refine_in, GradMatchConfig, GradMatchStats, RelayKind};
use freehgc_hetgraph::condense::{assemble, SynthesizedNodes, TypePlan};
use freehgc_hetgraph::{
    proportional_allocation, CondenseContext, CondenseSpec, CondensedGraph, Condenser,
    FeatureMatrix, HeteroGraph,
};

/// The HGCond baseline.
#[derive(Clone, Debug)]
pub struct HGCondBaseline {
    pub cfg: GradMatchConfig,
    /// Lloyd iterations for the hyper-node initialization.
    pub kmeans_iters: usize,
}

impl Default for HGCondBaseline {
    fn default() -> Self {
        Self {
            cfg: GradMatchConfig {
                relay: RelayKind::Hsgc,
                ops: true,
                relay_samples: 4,
                outer: 30,
                inner: 5,
                ..Default::default()
            },
            kmeans_iters: 8,
        }
    }
}

impl HGCondBaseline {
    /// Uses a different relay architecture (the HGC-HGT / HGC-HGB /
    /// HGC-SeH variants of Fig. 2a).
    pub fn with_relay(mut self, relay: RelayKind) -> Self {
        self.cfg.relay = relay;
        self
    }

    /// Condenses and returns the bi-level statistics (for Fig. 2b / 8
    /// time accounting).
    pub fn condense_with_stats(
        &self,
        g: &HeteroGraph,
        spec: &CondenseSpec,
    ) -> (CondensedGraph, GradMatchStats) {
        self.condense_with_stats_in(&CondenseContext::for_spec(g, spec), spec)
    }

    /// [`HGCondBaseline::condense_with_stats`] against a shared
    /// [`CondenseContext`] (reuses the real-side propagated blocks).
    pub fn condense_with_stats_in(
        &self,
        ctx: &CondenseContext<'_>,
        spec: &CondenseSpec,
    ) -> (CondensedGraph, GradMatchStats) {
        ctx.check_spec(spec);
        let g = ctx.graph();
        let schema = g.schema();
        let target = schema.target();

        // Hyper-node initialization by clustering (class-pure k-means for
        // the labeled target type; plain k-means elsewhere).
        let mut plans: Vec<TypePlan> = Vec::with_capacity(schema.num_node_types());
        for t in schema.node_type_ids() {
            let budget = spec.budget_for(g.num_nodes(t));
            if t == target {
                let labels = g.labels();
                let mut pools: Vec<Vec<u32>> = vec![Vec::new(); g.num_classes()];
                for &v in &g.split().train {
                    pools[labels[v as usize] as usize].push(v);
                }
                let counts: Vec<usize> = pools.iter().map(|p| p.len()).collect();
                let alloc = proportional_allocation(&counts, budget);
                let mut reps = Vec::with_capacity(budget);
                for (c, (pool, &b)) in pools.iter().zip(&alloc).enumerate() {
                    if pool.is_empty() || b == 0 {
                        continue;
                    }
                    for group in kmeans(
                        g.features(t),
                        pool,
                        b,
                        self.kmeans_iters,
                        spec.seed.wrapping_add(c as u64),
                    ) {
                        reps.push(medoid(g.features(t), &group));
                    }
                }
                reps.sort_unstable();
                reps.dedup();
                plans.push(TypePlan::Selected(reps));
            } else {
                let all: Vec<u32> = (0..g.num_nodes(t) as u32).collect();
                let groups = kmeans(
                    g.features(t),
                    &all,
                    budget,
                    self.kmeans_iters,
                    spec.seed ^ (t.0 as u64) << 8,
                );
                let feat = g.features(t);
                let mut fm = FeatureMatrix::zeros(0, feat.dim());
                for grp in &groups {
                    fm.push_row(&feat.mean_of(grp));
                }
                plans.push(TypePlan::Synthesized(SynthesizedNodes {
                    members: groups,
                    features: fm,
                }));
            }
        }

        // Sparse connection scheme = membership-rule assembly.
        let mut cond = assemble(g, &plans);

        // Bi-level OPS gradient matching on the target features.
        let stats = gradient_matching_refine_in(ctx, &mut cond, spec, &self.cfg);
        (cond, stats)
    }
}

impl Condenser for HGCondBaseline {
    fn name(&self) -> &'static str {
        "HGCond"
    }

    fn condense(&self, g: &HeteroGraph, spec: &CondenseSpec) -> CondensedGraph {
        self.condense_with_stats(g, spec).0
    }

    fn condense_in(&self, ctx: &CondenseContext<'_>, spec: &CondenseSpec) -> CondensedGraph {
        self.condense_with_stats_in(ctx, spec).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freehgc_datasets::tiny;
    use freehgc_hetgraph::Role;

    fn quick() -> HGCondBaseline {
        HGCondBaseline {
            cfg: GradMatchConfig {
                outer: 3,
                inner: 2,
                relay_samples: 2,
                ops: true,
                ..Default::default()
            },
            kmeans_iters: 3,
        }
    }

    #[test]
    fn hgcond_builds_valid_condensed_graph() {
        let g = tiny(0);
        let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(3);
        let (cg, stats) = quick().condense_with_stats(&g, &spec);
        cg.validate(&g);
        assert!(stats.final_loss.is_finite());
        // Non-target types become cluster hyper-nodes.
        for t in g.schema().node_type_ids() {
            if t != g.schema().target() {
                assert!(cg.orig_ids[t.0 as usize].is_none(), "{t:?}");
            }
            assert!(cg.graph.num_nodes(t) <= spec.budget_for(g.num_nodes(t)));
        }
    }

    #[test]
    fn hgcond_keeps_class_purity_of_target() {
        let g = tiny(1);
        let spec = CondenseSpec::new(0.25).with_max_hops(2).with_seed(4);
        let (cg, _) = quick().condense_with_stats(&g, &spec);
        for (k, &orig) in cg.target_ids().iter().enumerate() {
            assert_eq!(cg.graph.labels()[k], g.labels()[orig as usize]);
        }
    }

    #[test]
    fn relay_variants_produce_different_features() {
        let g = tiny(2);
        let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(5);
        let a = quick().condense_with_stats(&g, &spec).0;
        let b = quick()
            .with_relay(RelayKind::Hgt)
            .condense_with_stats(&g, &spec)
            .0;
        let t = g.schema().target();
        assert_ne!(a.graph.features(t).data(), b.graph.features(t).data());
    }

    #[test]
    fn leaf_types_keep_edges_through_hypernodes() {
        let g = tiny(3);
        let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(6);
        let (cg, _) = quick().condense_with_stats(&g, &spec);
        let leaf = g.schema().types_with_role(Role::Leaf)[0];
        let parent = g.schema().parent_of(leaf).unwrap();
        let (e, _) = g.schema().edge_between(parent, leaf).unwrap();
        assert!(cg.graph.adjacency(e).nnz() > 0);
    }
}
