//! Lloyd k-means for HGCond's cluster-based hyper-node initialization.
//!
//! HGCond "utilizes clustering information instead of label information
//! for feature initialization" (§II-C): every non-target type's nodes are
//! clustered on raw features and each cluster becomes one hyper-node.

use freehgc_hetgraph::FeatureMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Clusters `pool` rows of `feat` into at most `k` non-empty groups.
pub fn kmeans(
    feat: &FeatureMatrix,
    pool: &[u32],
    k: usize,
    iters: usize,
    seed: u64,
) -> Vec<Vec<u32>> {
    if pool.is_empty() || k == 0 {
        return Vec::new();
    }
    let k = k.min(pool.len());
    let dim = feat.dim();
    let mut rng = StdRng::seed_from_u64(seed);

    // Initialize centroids from a random sample of distinct pool nodes.
    let mut init: Vec<u32> = pool.to_vec();
    init.shuffle(&mut rng);
    let mut centroids: Vec<Vec<f32>> = init[..k]
        .iter()
        .map(|&p| feat.row(p as usize).to_vec())
        .collect();

    let mut assign = vec![0usize; pool.len()];
    for _ in 0..iters.max(1) {
        // Assignment step.
        for (i, &p) in pool.iter().enumerate() {
            let row = feat.row(p as usize);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, cent) in centroids.iter().enumerate() {
                let mut d = 0f32;
                for (a, b) in row.iter().zip(cent) {
                    d += (a - b) * (a - b);
                }
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assign[i] = best;
        }
        // Update step.
        let mut sums = vec![vec![0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, &p) in pool.iter().enumerate() {
            counts[assign[i]] += 1;
            for (s, &v) in sums[assign[i]].iter_mut().zip(feat.row(p as usize)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in sums[c].iter_mut() {
                    *s /= counts[c] as f32;
                }
                centroids[c] = sums[c].clone();
            }
        }
    }

    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (i, &p) in pool.iter().enumerate() {
        groups[assign[i]].push(p);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// The member of `group` closest to the group's feature centroid.
pub fn medoid(feat: &FeatureMatrix, group: &[u32]) -> u32 {
    assert!(!group.is_empty(), "medoid of empty group");
    let centroid = feat.mean_of(group);
    let mut best = group[0];
    let mut best_d = f32::INFINITY;
    for &p in group {
        let mut d = 0f32;
        for (a, b) in feat.row(p as usize).iter().zip(&centroid) {
            d += (a - b) * (a - b);
        }
        if d < best_d {
            best_d = d;
            best = p;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (FeatureMatrix, Vec<u32>) {
        let mut rows = Vec::new();
        for i in 0..10 {
            rows.extend([i as f32 * 0.01, 0.0]);
        }
        for i in 0..10 {
            rows.extend([10.0 + i as f32 * 0.01, 10.0]);
        }
        (FeatureMatrix::from_rows(2, rows), (0..20).collect())
    }

    #[test]
    fn kmeans_separates_blobs() {
        let (f, pool) = two_blobs();
        let groups = kmeans(&f, &pool, 2, 10, 0);
        assert_eq!(groups.len(), 2);
        for g in &groups {
            let all_low = g.iter().all(|&p| p < 10);
            let all_high = g.iter().all(|&p| p >= 10);
            assert!(all_low || all_high, "mixed cluster {g:?}");
        }
    }

    #[test]
    fn kmeans_covers_pool_exactly_once() {
        let (f, pool) = two_blobs();
        let groups = kmeans(&f, &pool, 5, 5, 1);
        let mut all: Vec<u32> = groups.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, pool);
    }

    #[test]
    fn kmeans_k_larger_than_pool() {
        let (f, _) = two_blobs();
        let groups = kmeans(&f, &[3, 4], 10, 3, 2);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn medoid_is_central() {
        let (f, _) = two_blobs();
        let m = medoid(&f, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert!(m < 10);
    }
}
