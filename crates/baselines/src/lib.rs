//! The five baseline graph-reduction methods the paper compares FreeHGC
//! against (§V-A), all behind the common
//! [`freehgc_hetgraph::Condenser`] trait:
//!
//! * [`coreset::RandomHg`], [`coreset::HerdingHg`], [`coreset::KCenterHg`]
//!   — coreset selection on HGNN intermediate embeddings;
//! * [`coarsening::CoarseningHg`] — variation-neighborhoods-style
//!   contraction into super-nodes;
//! * [`gcond::GCondBaseline`] — homogeneous gradient-matching condensation
//!   adapted with random sampling for unlabeled types (with the simulated
//!   memory budget that reproduces its Table VI OOM cells);
//! * [`hgcond::HGCondBaseline`] — the SOTA heterogeneous condenser:
//!   k-means hyper-node initialization, sparse membership connections and
//!   bi-level gradient matching with orthogonal parameter sequences.

pub mod cluster;
pub mod coarsening;
pub mod coreset;
pub mod gcond;
pub mod hgcond;
pub mod relay;

pub use coarsening::CoarseningHg;
pub use coreset::{target_embeddings, target_embeddings_in, HerdingHg, KCenterHg, RandomHg};
pub use gcond::{GCondBaseline, OutOfMemory};
pub use hgcond::HGCondBaseline;
pub use relay::{GradMatchConfig, RelayKind};
