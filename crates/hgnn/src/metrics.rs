//! Classification metrics reported in the paper's tables.

/// Fraction of exact matches (equals micro-F1 for single-label
/// classification, the "Accuracy" of Tables III–VIII).
pub fn accuracy(pred: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let hit = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hit as f64 / pred.len() as f64
}

/// `num_classes × num_classes` confusion matrix; rows = truth, cols = pred.
pub fn confusion_matrix(pred: &[u32], truth: &[u32], num_classes: usize) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &t) in pred.iter().zip(truth) {
        m[t as usize][p as usize] += 1;
    }
    m
}

/// Macro-averaged F1 over classes (classes absent from both pred and truth
/// are skipped).
pub fn macro_f1(pred: &[u32], truth: &[u32], num_classes: usize) -> f64 {
    let cm = confusion_matrix(pred, truth, num_classes);
    let mut f1_sum = 0.0;
    let mut present = 0usize;
    for c in 0..num_classes {
        let tp = cm[c][c];
        let fp: usize = (0..num_classes).filter(|&t| t != c).map(|t| cm[t][c]).sum();
        let fn_: usize = (0..num_classes).filter(|&p| p != c).map(|p| cm[c][p]).sum();
        if tp + fp + fn_ == 0 {
            continue;
        }
        present += 1;
        if tp == 0 {
            continue; // F1 = 0 contributes nothing
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / (tp + fn_) as f64;
        f1_sum += 2.0 * precision * recall / (precision + recall);
    }
    if present == 0 {
        0.0
    } else {
        f1_sum / present as f64
    }
}

/// Mean and sample standard deviation — table cells are reported as
/// `mean ± std` over 5 seeds (§V-B).
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() == 1 {
        return (mean, 0.0);
    }
    let var =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (values.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[0, 1, 2]), 1.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_counts() {
        let cm = confusion_matrix(&[0, 1, 1], &[0, 0, 1], 2);
        assert_eq!(cm[0][0], 1);
        assert_eq!(cm[0][1], 1);
        assert_eq!(cm[1][1], 1);
        assert_eq!(cm[1][0], 0);
    }

    #[test]
    fn macro_f1_perfect_is_one() {
        assert!((macro_f1(&[0, 1, 2, 0], &[0, 1, 2, 0], 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_penalizes_minority_errors_more_than_accuracy() {
        // 9 of class 0 right, 1 of class 1 wrong.
        let truth = [0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let pred = [0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let acc = accuracy(&pred, &truth);
        let f1 = macro_f1(&pred, &truth, 2);
        assert!(f1 < acc, "macro-F1 {f1} should undercut accuracy {acc}");
    }

    #[test]
    fn macro_f1_skips_absent_classes() {
        let f1 = macro_f1(&[0, 0], &[0, 0], 5);
        assert!((f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_std_matches_manual() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        let (m1, s1) = mean_std(&[5.0]);
        assert_eq!((m1, s1), (5.0, 0.0));
    }
}
