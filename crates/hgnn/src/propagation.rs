//! Meta-path feature propagation (the pre-processing stage of NARS /
//! SeHGNN-style scalable HGNNs).
//!
//! For every meta-path `ot ← … ← os` within `max_hops`, the propagated
//! block is `Â_path · X_os` — the mean-aggregated features of the path's
//! endpoints, one row per target node. The raw target features are block 0.
//!
//! Crucially, path enumeration depends only on the *schema*, so a graph
//! condensed by any method yields blocks aligned with the full graph's
//! blocks (same order, same dimensions) — this is what lets a head trained
//! on the condensed graph be evaluated on the full graph.

use freehgc_autograd::Matrix;
use freehgc_hetgraph::snapshot::{ByteReader, ByteWriter, PropagatedCodec};
use freehgc_hetgraph::{CondenseContext, HeteroGraph};
use std::any::Any;
use std::sync::Arc;

/// Per-meta-path propagated feature blocks for the target type.
#[derive(Clone, Debug)]
pub struct PropagatedFeatures {
    /// `blocks[0]` is the raw target feature matrix; `blocks[i]` (i ≥ 1)
    /// is the propagation along `path_names[i]`.
    pub blocks: Vec<Matrix>,
    /// Human-readable block names (`"raw"`, then meta-path names).
    pub path_names: Vec<String>,
}

impl PropagatedFeatures {
    /// Column dimension of each block.
    pub fn dims(&self) -> Vec<usize> {
        self.blocks.iter().map(|b| b.cols).collect()
    }

    /// Number of target rows.
    pub fn num_rows(&self) -> usize {
        self.blocks[0].rows
    }

    /// Gathers the given target rows from every block (for train/val/test
    /// subsets).
    pub fn gather(&self, rows: &[u32]) -> Vec<Matrix> {
        self.blocks.iter().map(|b| b.gather_rows(rows)).collect()
    }

    /// Resident heap bytes of the block data — what this value costs to
    /// keep cached. Reported through
    /// [`CacheCounters::propagated_bytes`](freehgc_hetgraph::CacheCounters).
    pub fn resident_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.data.len() * std::mem::size_of::<f32>())
            .sum::<usize>()
            + self.path_names.iter().map(|n| n.len()).sum::<usize>()
    }

    /// Deterministic recompute-cost estimate in the cache accountant's
    /// shared flop currency: rebuilding block `i` is one dense-output
    /// SpMM, ~2 flops per output cell (multiply + add), and block 0 is
    /// a copy. Dense `f32` payloads at ~0.5 flops per resident byte
    /// make propagated blocks the accountant's cheapest-per-byte
    /// family — the first evicted under memory pressure, exactly as
    /// intended: they dominate resident bytes and cost one SpMM each
    /// to bring back.
    pub fn recompute_flops(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| 2 * (b.rows as u64) * (b.cols as u64))
            .sum::<u64>()
            .max(1)
    }
}

/// The [`PropagatedCodec`] for this crate's [`PropagatedFeatures`]: the
/// `hetgraph` snapshot layer stores propagated blocks type-erased, so
/// the layer that owns the concrete type supplies the byte codec. Pass
/// `Some(&PropagatedFeaturesCodec)` to `save_snapshot_with` /
/// `resolve_or_load_with` to round-trip the blocks; without it the
/// snapshot still carries everything else and propagation recomputes.
///
/// Encoding is bit-exact (`f32` bits), so a propagation served from a
/// loaded snapshot equals a fresh one bitwise — the same contract every
/// other cache layer keeps.
pub struct PropagatedFeaturesCodec;

impl PropagatedCodec for PropagatedFeaturesCodec {
    fn encode(&self, value: &dyn Any) -> Option<Vec<u8>> {
        let pf = value.downcast_ref::<PropagatedFeatures>()?;
        debug_assert_eq!(pf.blocks.len(), pf.path_names.len());
        let mut w = ByteWriter::new();
        w.put_usize(pf.blocks.len());
        for (b, name) in pf.blocks.iter().zip(&pf.path_names) {
            w.put_str(name);
            w.put_usize(b.rows);
            w.put_usize(b.cols);
            w.put_f32_slice(&b.data);
        }
        Some(w.into_bytes())
    }

    fn decode(&self, bytes: &[u8]) -> Option<Arc<dyn Any + Send + Sync>> {
        let mut r = ByteReader::new(bytes);
        let n = r.seq_len(1).ok()?;
        let mut blocks = Vec::with_capacity(n);
        let mut path_names = Vec::with_capacity(n);
        for _ in 0..n {
            path_names.push(r.str().ok()?);
            let rows = r.usize().ok()?;
            let cols = r.usize().ok()?;
            let len = rows.checked_mul(cols)?;
            // f32_vec bounds-checks len * 4 against the remaining input,
            // so a corrupted dimension pair fails here instead of
            // driving a huge allocation.
            let data = r.f32_vec(len).ok()?;
            blocks.push(Matrix::from_vec(rows, cols, data));
        }
        if !r.is_empty() {
            return None;
        }
        Some(Arc::new(PropagatedFeatures { blocks, path_names }))
    }

    /// Every block carries one row per target node — a crafted or
    /// checksum-colliding file with short blocks would otherwise pass
    /// decode and panic in a later `gather`.
    fn validate(&self, value: &dyn Any, graph: &HeteroGraph) -> bool {
        let Some(pf) = value.downcast_ref::<PropagatedFeatures>() else {
            return false;
        };
        let n = graph.num_nodes(graph.schema().target());
        !pf.blocks.is_empty()
            && pf.blocks.len() == pf.path_names.len()
            && pf.blocks.iter().all(|b| b.rows == n)
    }

    /// Sizes a snapshot-loaded block set so
    /// [`CacheCounters::propagated_bytes`](freehgc_hetgraph::CacheCounters)
    /// stays accurate for warm-from-disk contexts too.
    fn resident_bytes(&self, value: &dyn Any) -> usize {
        value
            .downcast_ref::<PropagatedFeatures>()
            .map_or(0, PropagatedFeatures::resident_bytes)
    }

    /// Costs a snapshot-loaded block set in the accountant's flop
    /// currency, so a warm-from-disk entry competes for budget exactly
    /// like a freshly propagated one.
    fn recompute_cost(&self, value: &dyn Any) -> u64 {
        value
            .downcast_ref::<PropagatedFeatures>()
            .map_or(0, PropagatedFeatures::recompute_flops)
    }
}

/// Default cap on the number of enumerated meta-paths (re-exported from
/// `freehgc_hetgraph`, where [`freehgc_hetgraph::CondenseSpec`] uses it
/// as its default too — one knob for both layers).
pub use freehgc_hetgraph::DEFAULT_MAX_PATHS;

/// Computes propagated blocks for the target type of `g`.
///
/// Builds a fresh single-use [`CondenseContext`]; use [`propagate_ctx`]
/// to share the compositions and the finished blocks across callers.
pub fn propagate(g: &HeteroGraph, max_hops: usize, max_paths: usize) -> PropagatedFeatures {
    propagate_uncached(&CondenseContext::new(g), max_hops, max_paths)
}

/// [`propagate`] against a shared [`CondenseContext`]: the *finished
/// block set* is memoized under `(max_hops, max_paths)` — a warm context
/// returns the same `Arc` without recomputing anything — and on a miss
/// the adjacency compositions come from (and warm) the context's caches.
/// Bitwise-identical to the fresh-context path.
pub fn propagate_ctx(
    ctx: &CondenseContext<'_>,
    max_hops: usize,
    max_paths: usize,
) -> Arc<PropagatedFeatures> {
    ctx.propagated_costed(
        (max_hops, max_paths),
        || propagate_uncached(ctx, max_hops, max_paths),
        PropagatedFeatures::resident_bytes,
        PropagatedFeatures::recompute_flops,
    )
}

/// Adjacency composition runs first (the prefix cache is inherently
/// sequential, but the SpGEMMs inside are row-parallel); the per-path
/// `Â·X` products are then computed block-parallel, one worker per
/// path, with results kept in path order so block layout is unchanged.
fn propagate_uncached(
    ctx: &CondenseContext<'_>,
    max_hops: usize,
    max_paths: usize,
) -> PropagatedFeatures {
    let g = ctx.graph();
    let schema = g.schema();
    let target = schema.target();
    let paths = ctx.metapaths(target, max_hops, max_paths);
    let adjacencies: Vec<_> = paths.iter().map(|p| ctx.adjacency(p)).collect();

    let n = g.num_nodes(target);
    let raw = g.features(target);
    let mut blocks = Vec::with_capacity(paths.len() + 1);
    let mut path_names = Vec::with_capacity(paths.len() + 1);
    blocks.push(Matrix::from_vec(n, raw.dim(), raw.data().to_vec()));
    path_names.push("raw".to_string());

    let propagated = freehgc_parallel::scoped_map(
        paths.iter().zip(adjacencies).collect::<Vec<_>>(),
        |_, (p, adj)| {
            let src_feat = g.features(p.source());
            // spmm_dense_into writes straight into the block's own
            // buffer — no intermediate Vec to hand off.
            let mut block = Matrix::zeros(n, src_feat.dim());
            adj.spmm_dense_into(src_feat.data(), src_feat.dim(), &mut block.data);
            block
        },
    );
    blocks.extend(propagated);
    path_names.extend(paths.iter().map(|p| p.name(schema)));
    PropagatedFeatures { blocks, path_names }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freehgc_datasets::tiny;

    #[test]
    fn block_zero_is_raw_features() {
        let g = tiny(0);
        let pf = propagate(&g, 2, 16);
        let t = g.schema().target();
        assert_eq!(pf.blocks[0].rows, g.num_nodes(t));
        assert_eq!(pf.blocks[0].cols, g.features(t).dim());
        assert_eq!(pf.blocks[0].data, g.features(t).data());
        assert_eq!(pf.path_names[0], "raw");
    }

    #[test]
    fn every_block_has_target_rows() {
        let g = tiny(1);
        let pf = propagate(&g, 2, 16);
        let n = g.num_nodes(g.schema().target());
        assert!(pf.blocks.len() > 1, "should enumerate at least one path");
        for b in &pf.blocks {
            assert_eq!(b.rows, n);
        }
        assert_eq!(pf.blocks.len(), pf.path_names.len());
    }

    #[test]
    fn condensed_and_full_blocks_align() {
        let g = tiny(2);
        // Induce a sub-graph (simple selection) and check the block layout
        // matches the full graph's: same count, same dims, same names.
        let keep: Vec<Vec<u32>> = g
            .schema()
            .node_type_ids()
            .map(|t| (0..g.num_nodes(t) as u32 / 2).collect())
            .collect();
        let sub = g.induced(&keep);
        let pf_full = propagate(&g, 2, 16);
        let pf_sub = propagate(&sub, 2, 16);
        assert_eq!(pf_full.path_names, pf_sub.path_names);
        assert_eq!(pf_full.dims(), pf_sub.dims());
    }

    #[test]
    fn gather_selects_rows() {
        let g = tiny(3);
        let pf = propagate(&g, 1, 8);
        let rows = vec![0u32, 2, 4];
        let gathered = pf.gather(&rows);
        assert_eq!(gathered[0].rows, 3);
        assert_eq!(gathered[0].row(1), pf.blocks[0].row(2));
    }

    #[test]
    fn context_propagation_matches_fresh_and_is_cached() {
        let g = tiny(5);
        let ctx = CondenseContext::new(&g);
        let fresh = propagate(&g, 2, 16);
        let a = propagate_ctx(&ctx, 2, 16);
        assert_eq!(a.path_names, fresh.path_names);
        for (ab, fb) in a.blocks.iter().zip(&fresh.blocks) {
            assert_eq!(ab.data, fb.data, "context block must match fresh");
        }
        let b = propagate_ctx(&ctx, 2, 16);
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        // A different key is a different computation.
        let c = propagate_ctx(&ctx, 1, 16);
        assert!(c.blocks.len() < a.blocks.len());
    }

    #[test]
    fn codec_round_trips_propagated_blocks_bitwise() {
        let g = tiny(6);
        let pf = propagate(&g, 2, 16);
        let codec = PropagatedFeaturesCodec;
        let bytes = codec.encode(&pf as &dyn Any).expect("own type encodes");
        let decoded = codec.decode(&bytes).expect("round trip");
        let back = decoded
            .downcast::<PropagatedFeatures>()
            .expect("decodes to the concrete type");
        assert_eq!(back.path_names, pf.path_names);
        assert_eq!(back.blocks.len(), pf.blocks.len());
        for (a, b) in back.blocks.iter().zip(&pf.blocks) {
            assert_eq!((a.rows, a.cols), (b.rows, b.cols));
            assert_eq!(a.data, b.data, "block bits must survive the codec");
        }
        // A foreign type is politely declined, and garbage bytes decode
        // to None instead of panicking.
        assert!(codec.encode(&42u32 as &dyn Any).is_none());
        assert!(codec.decode(&bytes[..bytes.len() / 2]).is_none());
        assert!(codec.decode(&[0xFF; 9]).is_none());
        // Shape validation: the blocks fit their own graph, not one
        // with a different target count.
        assert!(codec.validate(&pf as &dyn Any, &g));
        let keep: Vec<Vec<u32>> = g
            .schema()
            .node_type_ids()
            .map(|t| (0..g.num_nodes(t) as u32 / 2).collect())
            .collect();
        let smaller = g.induced(&keep);
        assert!(
            !codec.validate(&pf as &dyn Any, &smaller),
            "row-count mismatch must be rejected"
        );
        assert!(!codec.validate(&42u32 as &dyn Any, &g));
    }

    #[test]
    fn propagation_mixes_neighbor_features() {
        let g = tiny(4);
        let pf = propagate(&g, 1, 8);
        // A 1-hop block should not be all zeros (graph has edges) and not
        // equal the raw block.
        let nonzero = pf.blocks[1].data.iter().filter(|&&v| v != 0.0).count();
        assert!(nonzero > 0);
    }
}
