//! Heterogeneous GNN model zoo for the FreeHGC reproduction.
//!
//! All five models follow the scalable "pre-propagate, then fuse" design
//! the paper builds on (NARS / SeHGNN, §II-B): neighbor aggregation is a
//! *pre-processing step* — per-meta-path mean aggregation computed with
//! sparse kernels ([`propagation`]) — and the trainable part is a semantic
//! *fusion head* over the per-path feature blocks. SeHGNN's finding that
//! "semantic attention is essential while neighbor attention is not"
//! (quoted in §IV-C of the paper) justifies the mean aggregator; the five
//! heads differ exactly where real HGNNs differ, in how they fuse
//! semantics:
//!
//! * [`models::HeteroSgc`] — linear mean fusion (HGCond's relay model);
//! * [`models::SeHgnn`] — semantic attention + MLP (the paper's test model);
//! * [`models::Han`] — projected tanh semantic attention, linear head;
//! * [`models::Hgb`] — relation-embedding sigmoid gates over paths;
//! * [`models::Hgt`] — multi-head scaled dot-product mixing.
//!
//! [`trainer`] provides full-batch Adam training with early stopping and
//! [`metrics`] the accuracy / F1 measures reported in the paper's tables.

pub mod metrics;
pub mod models;
pub mod propagation;
pub mod trainer;

pub use models::{build_model, Model, ModelKind};
pub use propagation::{propagate, propagate_ctx, PropagatedFeatures};
pub use trainer::{train, EvalData, TrainConfig, TrainReport};
