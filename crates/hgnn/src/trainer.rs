//! Full-batch training with Adam and validation-based early stopping.
//!
//! The paper's evaluation protocol (§V-B) is: train the test model on the
//! *condensed* graph and evaluate on the *full* graph's test split. The
//! trainer therefore works on gathered per-split block sets and never sees
//! the graph itself.

use crate::metrics::accuracy;
use crate::models::Model;
use freehgc_autograd::{Adam, Matrix, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters (paper §V-B: lr 0.001, dropout 0.5, hidden 128; we
/// default to a smaller hidden size and larger lr suited to the scaled
/// synthetic datasets).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub hidden: usize,
    pub lr: f32,
    pub weight_decay: f32,
    pub dropout: f32,
    pub epochs: usize,
    /// Early-stopping patience in epochs (0 disables early stopping).
    pub patience: usize,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            lr: 0.01,
            weight_decay: 5e-4,
            dropout: 0.5,
            epochs: 120,
            patience: 25,
            seed: 0,
        }
    }
}

impl TrainConfig {
    pub fn quick() -> Self {
        Self {
            epochs: 40,
            patience: 10,
            ..Self::default()
        }
    }
}

/// A labeled block set (gathered rows of propagated features).
pub struct EvalData<'a> {
    pub blocks: &'a [Matrix],
    pub labels: &'a [u32],
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    pub epochs_run: usize,
    pub final_train_loss: f32,
    pub best_val_acc: f64,
}

/// Predicted classes for a block set.
pub fn predict(model: &dyn Model, blocks: &[Matrix]) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut tape = Tape::new();
    let z = model.logits(&mut tape, blocks, false, &mut rng);
    tape.value(z).argmax_rows()
}

/// Accuracy of `model` on a block set.
pub fn evaluate(model: &dyn Model, data: &EvalData) -> f64 {
    accuracy(&predict(model, data.blocks), data.labels)
}

/// Trains `model` on `train_data`, early-stopping on `val` accuracy when
/// provided; the best-validation parameters are restored before returning.
pub fn train(
    model: &mut dyn Model,
    train_data: &EvalData,
    val: Option<&EvalData>,
    cfg: &TrainConfig,
) -> TrainReport {
    assert_eq!(
        train_data.blocks[0].rows,
        train_data.labels.len(),
        "one label per training row"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut adam = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut best_val = f64::NEG_INFINITY;
    let mut best_snapshot = None;
    let mut since_best = 0usize;
    let mut final_loss = f32::NAN;
    let mut epochs_run = 0usize;

    for epoch in 0..cfg.epochs {
        epochs_run = epoch + 1;
        let mut tape = Tape::new();
        let z = model.logits(&mut tape, train_data.blocks, true, &mut rng);
        let loss = tape.cross_entropy_mean(z, train_data.labels);
        final_loss = tape.value(loss).get(0, 0);
        let grads = tape.backward(loss);
        model.store_mut().zero_grads();
        tape.accumulate_param_grads(&grads, model.store_mut());
        adam.step(model.store_mut());

        if let Some(v) = val {
            let acc = evaluate(model, v);
            if acc > best_val {
                best_val = acc;
                best_snapshot = Some(model.store().clone());
                since_best = 0;
            } else {
                since_best += 1;
                if cfg.patience > 0 && since_best >= cfg.patience {
                    break;
                }
            }
        }
    }
    if let Some(snap) = best_snapshot {
        *model.store_mut() = snap;
    }
    TrainReport {
        epochs_run,
        final_train_loss: final_loss,
        best_val_acc: if best_val.is_finite() { best_val } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{build_model, ModelKind};

    /// Linearly separable two-block toy problem.
    fn toy(n_per_class: usize, seed: u64) -> (Vec<Matrix>, Vec<u32>) {
        let mut data0 = Vec::new();
        let mut data1 = Vec::new();
        let mut labels = Vec::new();
        let mut rng_state = seed;
        let mut next = || {
            // xorshift for tiny deterministic noise
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state % 1000) as f32 / 1000.0 - 0.5
        };
        for c in 0..3u32 {
            for _ in 0..n_per_class {
                let base = c as f32;
                data0.extend([base + 0.2 * next(), -base + 0.2 * next()]);
                data1.extend([2.0 * base + 0.2 * next()]);
                labels.push(c);
            }
        }
        let n = labels.len();
        (
            vec![Matrix::from_vec(n, 2, data0), Matrix::from_vec(n, 1, data1)],
            labels,
        )
    }

    #[test]
    fn every_model_fits_separable_data() {
        let (blocks, labels) = toy(20, 42);
        for kind in [
            ModelKind::HeteroSgc,
            ModelKind::SeHgnn,
            ModelKind::Han,
            ModelKind::Hgb,
            ModelKind::Hgt,
        ] {
            let mut model = build_model(kind, &[2, 1], 3, 16, 0.0, 1);
            let data = EvalData {
                blocks: &blocks,
                labels: &labels,
            };
            let cfg = TrainConfig {
                epochs: 200,
                patience: 0,
                lr: 0.05,
                weight_decay: 0.0,
                dropout: 0.0,
                hidden: 16,
                seed: 0,
            };
            train(&mut *model, &data, None, &cfg);
            let acc = evaluate(&*model, &data);
            assert!(acc > 0.9, "{kind:?} reached only {acc:.3}");
        }
    }

    #[test]
    fn early_stopping_restores_best_params() {
        let (blocks, labels) = toy(10, 7);
        let mut model = build_model(ModelKind::SeHgnn, &[2, 1], 3, 8, 0.0, 2);
        let data = EvalData {
            blocks: &blocks,
            labels: &labels,
        };
        let cfg = TrainConfig {
            epochs: 100,
            patience: 5,
            lr: 0.05,
            weight_decay: 0.0,
            dropout: 0.0,
            hidden: 8,
            seed: 0,
        };
        let report = train(&mut *model, &data, Some(&data), &cfg);
        // Restored parameters must reproduce the reported best accuracy.
        let acc = evaluate(&*model, &data);
        assert!(
            (acc - report.best_val_acc).abs() < 1e-9,
            "restored {acc} vs best {}",
            report.best_val_acc
        );
    }

    #[test]
    fn training_reduces_loss() {
        let (blocks, labels) = toy(15, 3);
        let mut model = build_model(ModelKind::Hgb, &[2, 1], 3, 8, 0.0, 3);
        let data = EvalData {
            blocks: &blocks,
            labels: &labels,
        };
        let mut cfg = TrainConfig {
            epochs: 1,
            patience: 0,
            lr: 0.05,
            weight_decay: 0.0,
            dropout: 0.0,
            hidden: 8,
            seed: 0,
        };
        let first = train(&mut *model, &data, None, &cfg).final_train_loss;
        cfg.epochs = 150;
        let last = train(&mut *model, &data, None, &cfg).final_train_loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn predict_shape() {
        let (blocks, labels) = toy(5, 9);
        let model = build_model(ModelKind::HeteroSgc, &[2, 1], 3, 8, 0.0, 4);
        let pred = predict(&*model, &blocks);
        assert_eq!(pred.len(), labels.len());
        assert!(pred.iter().all(|&p| p < 3));
    }
}
