//! The five HGNN fusion heads.
//!
//! Every model consumes the same per-meta-path propagated blocks
//! ([`crate::propagation`]) and differs only in its semantic-fusion
//! mechanism — mirroring how the real HGNNs the paper evaluates differ
//! (§II-B, Table IV). This is exactly the property that makes the
//! generalization experiment meaningful: a condensed graph that bakes in
//! one model's fusion will transfer poorly to the others.

use freehgc_autograd::{Matrix, NodeId, ParamId, ParamStore, Tape};
use rand::rngs::StdRng;

/// Which HGNN architecture to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// HeteroSGC — HGCond's relay model: linear mean fusion, no hidden
    /// nonlinearity.
    HeteroSgc,
    /// SeHGNN-style: semantic attention over paths + 2-layer MLP.
    SeHgnn,
    /// HAN-style: per-path tanh projection + semantic attention, linear head.
    Han,
    /// HGB-style: learnable relation-embedding sigmoid gates (unnormalized).
    Hgb,
    /// HGT-style: two-head scaled dot-product semantic mixing + residual.
    Hgt,
}

impl ModelKind {
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::HeteroSgc => "HSGC",
            ModelKind::SeHgnn => "SeHGNN",
            ModelKind::Han => "HAN",
            ModelKind::Hgb => "HGB",
            ModelKind::Hgt => "HGT",
        }
    }

    /// The four evaluation models of Table IV.
    pub fn table_iv() -> [ModelKind; 4] {
        [
            ModelKind::Hgb,
            ModelKind::Hgt,
            ModelKind::Han,
            ModelKind::SeHgnn,
        ]
    }
}

/// A trainable HGNN head over propagated feature blocks.
pub trait Model {
    fn kind(&self) -> ModelKind;
    fn store(&self) -> &ParamStore;
    fn store_mut(&mut self) -> &mut ParamStore;
    /// Builds the forward computation and returns the logits node
    /// (`rows × num_classes`). `training` enables dropout.
    fn logits(
        &self,
        tape: &mut Tape,
        blocks: &[Matrix],
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId;
}

/// Builds a model of the given kind for blocks with the given dims.
pub fn build_model(
    kind: ModelKind,
    block_dims: &[usize],
    num_classes: usize,
    hidden: usize,
    dropout: f32,
    seed: u64,
) -> Box<dyn Model> {
    match kind {
        ModelKind::HeteroSgc => Box::new(HeteroSgc::new(block_dims, num_classes, hidden, seed)),
        ModelKind::SeHgnn => Box::new(SeHgnn::new(block_dims, num_classes, hidden, dropout, seed)),
        ModelKind::Han => Box::new(Han::new(block_dims, num_classes, hidden, seed)),
        ModelKind::Hgb => Box::new(Hgb::new(block_dims, num_classes, hidden, dropout, seed)),
        ModelKind::Hgt => Box::new(Hgt::new(block_dims, num_classes, hidden, seed)),
    }
}

/// Per-block linear projections shared by all heads.
struct Projections {
    weights: Vec<ParamId>,
}

impl Projections {
    fn new(store: &mut ParamStore, dims: &[usize], hidden: usize, seed: u64) -> Self {
        let weights = dims
            .iter()
            .enumerate()
            .map(|(i, &d)| store.add(Matrix::xavier(d, hidden, seed.wrapping_add(i as u64))))
            .collect();
        Self { weights }
    }

    /// `H_i = X_i · W_i` for every block.
    fn apply(&self, tape: &mut Tape, store: &ParamStore, blocks: &[Matrix]) -> Vec<NodeId> {
        assert_eq!(blocks.len(), self.weights.len(), "block count mismatch");
        blocks
            .iter()
            .zip(&self.weights)
            .map(|(x, &w)| {
                let xn = tape.constant(x.clone());
                let wn = tape.param(store, w);
                tape.matmul(xn, wn)
            })
            .collect()
    }
}

/// Row-mean of a node as `1/n · 1ᵀ H` — used by attention scoring.
fn mean_rows(tape: &mut Tape, h: NodeId) -> NodeId {
    let n = tape.value(h).rows;
    let ones = tape.constant(Matrix::from_vec(1, n, vec![1.0 / n.max(1) as f32; n]));
    tape.matmul(ones, h)
}

/// Semantic-attention weights `softmax_i(mean(tanh(H_i)) · q)` as a
/// `1 × L` node.
fn semantic_attention(tape: &mut Tape, store: &ParamStore, hs: &[NodeId], q: ParamId) -> NodeId {
    let qn = tape.param(store, q);
    let scores: Vec<NodeId> = hs
        .iter()
        .map(|&h| {
            let t = tape.tanh(h);
            let m = mean_rows(tape, t);
            tape.matmul(m, qn) // 1×1
        })
        .collect();
    let cat = tape.concat_cols(&scores);
    tape.softmax_rows(cat)
}

// --------------------------------------------------------------------------
// HeteroSGC
// --------------------------------------------------------------------------

/// HGCond's relay model: `logits = mean_i(X_i W_i) · W_out + b`. Purely
/// linear — "the simplest heterogeneous graph model" (§I).
pub struct HeteroSgc {
    store: ParamStore,
    proj: Projections,
    w_out: ParamId,
    b_out: ParamId,
}

impl HeteroSgc {
    pub fn new(dims: &[usize], num_classes: usize, hidden: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let proj = Projections::new(&mut store, dims, hidden, seed);
        let w_out = store.add(Matrix::xavier(hidden, num_classes, seed ^ 0xa1));
        let b_out = store.add(Matrix::zeros(1, num_classes));
        Self {
            store,
            proj,
            w_out,
            b_out,
        }
    }
}

impl Model for HeteroSgc {
    fn kind(&self) -> ModelKind {
        ModelKind::HeteroSgc
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn logits(
        &self,
        tape: &mut Tape,
        blocks: &[Matrix],
        _training: bool,
        _rng: &mut StdRng,
    ) -> NodeId {
        let hs = self.proj.apply(tape, &self.store, blocks);
        let sum = tape.add_n(&hs);
        let mean = tape.scale(sum, 1.0 / hs.len() as f32);
        let w = tape.param(&self.store, self.w_out);
        let b = tape.param(&self.store, self.b_out);
        let z = tape.matmul(mean, w);
        tape.add_bias(z, b)
    }
}

// --------------------------------------------------------------------------
// SeHGNN
// --------------------------------------------------------------------------

/// SeHGNN-style head: semantic attention over path blocks, then a two-layer
/// MLP with dropout — the strongest test model in the paper (its
/// whole-graph accuracy is the "ideal" line of Fig. 2a).
pub struct SeHgnn {
    store: ParamStore,
    proj: Projections,
    q: ParamId,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    dropout: f32,
}

impl SeHgnn {
    pub fn new(dims: &[usize], num_classes: usize, hidden: usize, dropout: f32, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let proj = Projections::new(&mut store, dims, hidden, seed);
        let q = store.add(Matrix::xavier(hidden, 1, seed ^ 0xb2));
        let w1 = store.add(Matrix::xavier(hidden, hidden, seed ^ 0xb3));
        let b1 = store.add(Matrix::zeros(1, hidden));
        let w2 = store.add(Matrix::xavier(hidden, num_classes, seed ^ 0xb4));
        let b2 = store.add(Matrix::zeros(1, num_classes));
        Self {
            store,
            proj,
            q,
            w1,
            b1,
            w2,
            b2,
            dropout,
        }
    }
}

impl Model for SeHgnn {
    fn kind(&self) -> ModelKind {
        ModelKind::SeHgnn
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn logits(
        &self,
        tape: &mut Tape,
        blocks: &[Matrix],
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let hs = self.proj.apply(tape, &self.store, blocks);
        let alpha = semantic_attention(tape, &self.store, &hs, self.q);
        let fused = tape.weighted_sum(&hs, alpha);
        let w1 = tape.param(&self.store, self.w1);
        let b1 = tape.param(&self.store, self.b1);
        let h = tape.matmul(fused, w1);
        let h = tape.add_bias(h, b1);
        let mut h = tape.relu(h);
        if training && self.dropout > 0.0 {
            h = tape.dropout(h, self.dropout, rng);
        }
        let w2 = tape.param(&self.store, self.w2);
        let b2 = tape.param(&self.store, self.b2);
        let z = tape.matmul(h, w2);
        tape.add_bias(z, b2)
    }
}

// --------------------------------------------------------------------------
// HAN
// --------------------------------------------------------------------------

/// HAN-style head: per-path tanh projection with bias, shared semantic
/// attention vector, single linear output (node-level attention replaced by
/// the mean aggregator per SeHGNN's finding).
pub struct Han {
    store: ParamStore,
    proj: Projections,
    proj_bias: Vec<ParamId>,
    q: ParamId,
    w_out: ParamId,
    b_out: ParamId,
}

impl Han {
    pub fn new(dims: &[usize], num_classes: usize, hidden: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let proj = Projections::new(&mut store, dims, hidden, seed);
        let proj_bias = dims
            .iter()
            .map(|_| store.add(Matrix::zeros(1, hidden)))
            .collect();
        let q = store.add(Matrix::xavier(hidden, 1, seed ^ 0xc1));
        let w_out = store.add(Matrix::xavier(hidden, num_classes, seed ^ 0xc2));
        let b_out = store.add(Matrix::zeros(1, num_classes));
        Self {
            store,
            proj,
            proj_bias,
            q,
            w_out,
            b_out,
        }
    }
}

impl Model for Han {
    fn kind(&self) -> ModelKind {
        ModelKind::Han
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn logits(
        &self,
        tape: &mut Tape,
        blocks: &[Matrix],
        _training: bool,
        _rng: &mut StdRng,
    ) -> NodeId {
        let hs = self.proj.apply(tape, &self.store, blocks);
        let zs: Vec<NodeId> = hs
            .iter()
            .zip(&self.proj_bias)
            .map(|(&h, &b)| {
                let bn = tape.param(&self.store, b);
                let hb = tape.add_bias(h, bn);
                tape.tanh(hb)
            })
            .collect();
        let alpha = semantic_attention(tape, &self.store, &zs, self.q);
        let fused = tape.weighted_sum(&zs, alpha);
        let w = tape.param(&self.store, self.w_out);
        let b = tape.param(&self.store, self.b_out);
        let z = tape.matmul(fused, w);
        tape.add_bias(z, b)
    }
}

// --------------------------------------------------------------------------
// HGB
// --------------------------------------------------------------------------

/// HGB-style head: each path gets a learnable relation embedding that
/// produces a sigmoid gate (unnormalized, unlike softmax attention); the
/// gated sum feeds a ReLU MLP.
pub struct Hgb {
    store: ParamStore,
    proj: Projections,
    /// Relation-embedding scalars, one per path (`1 × L`).
    gates: ParamId,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    dropout: f32,
}

impl Hgb {
    pub fn new(dims: &[usize], num_classes: usize, hidden: usize, dropout: f32, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let proj = Projections::new(&mut store, dims, hidden, seed);
        let gates = store.add(Matrix::zeros(1, dims.len())); // sigmoid(0)=0.5
        let w1 = store.add(Matrix::xavier(hidden, hidden, seed ^ 0xd1));
        let b1 = store.add(Matrix::zeros(1, hidden));
        let w2 = store.add(Matrix::xavier(hidden, num_classes, seed ^ 0xd2));
        let b2 = store.add(Matrix::zeros(1, num_classes));
        Self {
            store,
            proj,
            gates,
            w1,
            b1,
            w2,
            b2,
            dropout,
        }
    }
}

impl Model for Hgb {
    fn kind(&self) -> ModelKind {
        ModelKind::Hgb
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn logits(
        &self,
        tape: &mut Tape,
        blocks: &[Matrix],
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let hs = self.proj.apply(tape, &self.store, blocks);
        let gn = tape.param(&self.store, self.gates);
        let gates = tape.sigmoid(gn);
        let fused = tape.weighted_sum(&hs, gates);
        let w1 = tape.param(&self.store, self.w1);
        let b1 = tape.param(&self.store, self.b1);
        let h = tape.matmul(fused, w1);
        let h = tape.add_bias(h, b1);
        let mut h = tape.relu(h);
        if training && self.dropout > 0.0 {
            h = tape.dropout(h, self.dropout, rng);
        }
        let w2 = tape.param(&self.store, self.w2);
        let b2 = tape.param(&self.store, self.b2);
        let z = tape.matmul(h, w2);
        tape.add_bias(z, b2)
    }
}

// --------------------------------------------------------------------------
// HGT
// --------------------------------------------------------------------------

/// HGT-style head: two attention heads with scaled dot-product scores over
/// path summaries, averaged and combined with a mean residual, then a ReLU
/// output block — transformer-flavoured semantic mixing.
pub struct Hgt {
    store: ParamStore,
    proj: Projections,
    q1: ParamId,
    q2: ParamId,
    w_out: ParamId,
    b_out: ParamId,
    hidden: usize,
}

impl Hgt {
    pub fn new(dims: &[usize], num_classes: usize, hidden: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let proj = Projections::new(&mut store, dims, hidden, seed);
        let q1 = store.add(Matrix::xavier(hidden, 1, seed ^ 0xe1));
        let q2 = store.add(Matrix::xavier(hidden, 1, seed ^ 0xe2));
        let w_out = store.add(Matrix::xavier(hidden, num_classes, seed ^ 0xe3));
        let b_out = store.add(Matrix::zeros(1, num_classes));
        Self {
            store,
            proj,
            q1,
            q2,
            w_out,
            b_out,
            hidden,
        }
    }

    fn head(&self, tape: &mut Tape, hs: &[NodeId], q: ParamId) -> NodeId {
        let qn = tape.param(&self.store, q);
        let inv_sqrt = 1.0 / (self.hidden as f32).sqrt();
        let scores: Vec<NodeId> = hs
            .iter()
            .map(|&h| {
                let m = mean_rows(tape, h);
                let s = tape.matmul(m, qn);
                tape.scale(s, inv_sqrt)
            })
            .collect();
        let cat = tape.concat_cols(&scores);
        let alpha = tape.softmax_rows(cat);
        tape.weighted_sum(hs, alpha)
    }
}

impl Model for Hgt {
    fn kind(&self) -> ModelKind {
        ModelKind::Hgt
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn logits(
        &self,
        tape: &mut Tape,
        blocks: &[Matrix],
        _training: bool,
        _rng: &mut StdRng,
    ) -> NodeId {
        let hs = self.proj.apply(tape, &self.store, blocks);
        let h1 = self.head(tape, &hs, self.q1);
        let h2 = self.head(tape, &hs, self.q2);
        let sum = tape.add_n(&hs);
        let residual = tape.scale(sum, 1.0 / hs.len() as f32);
        let heads = tape.add(h1, h2);
        let heads = tape.scale(heads, 0.5);
        let mixed = tape.add(heads, residual);
        let act = tape.relu(mixed);
        let w = tape.param(&self.store, self.w_out);
        let b = tape.param(&self.store, self.b_out);
        let z = tape.matmul(act, w);
        tape.add_bias(z, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy_blocks() -> Vec<Matrix> {
        vec![Matrix::xavier(6, 4, 1), Matrix::xavier(6, 3, 2)]
    }

    fn all_kinds() -> [ModelKind; 5] {
        [
            ModelKind::HeteroSgc,
            ModelKind::SeHgnn,
            ModelKind::Han,
            ModelKind::Hgb,
            ModelKind::Hgt,
        ]
    }

    #[test]
    fn every_model_produces_logits_of_right_shape() {
        let blocks = toy_blocks();
        let mut rng = StdRng::seed_from_u64(0);
        for kind in all_kinds() {
            let m = build_model(kind, &[4, 3], 3, 8, 0.5, 7);
            let mut tape = Tape::new();
            let z = m.logits(&mut tape, &blocks, true, &mut rng);
            assert_eq!(tape.value(z).shape(), (6, 3), "{kind:?}");
            assert_eq!(m.kind(), kind);
        }
    }

    #[test]
    fn logits_are_deterministic_without_dropout() {
        let blocks = toy_blocks();
        for kind in all_kinds() {
            let m = build_model(kind, &[4, 3], 3, 8, 0.0, 7);
            let mut rng1 = StdRng::seed_from_u64(1);
            let mut rng2 = StdRng::seed_from_u64(2);
            let mut t1 = Tape::new();
            let z1 = m.logits(&mut t1, &blocks, false, &mut rng1);
            let mut t2 = Tape::new();
            let z2 = m.logits(&mut t2, &blocks, false, &mut rng2);
            assert_eq!(t1.value(z1), t2.value(z2), "{kind:?}");
        }
    }

    #[test]
    fn models_have_trainable_parameters() {
        for kind in all_kinds() {
            let m = build_model(kind, &[4, 3], 3, 8, 0.5, 7);
            assert!(m.store().num_scalars() > 0, "{kind:?}");
        }
    }

    #[test]
    fn architectures_differ_in_output() {
        let blocks = toy_blocks();
        let mut rng = StdRng::seed_from_u64(3);
        let mut outputs: Vec<Vec<f32>> = Vec::new();
        for kind in all_kinds() {
            let m = build_model(kind, &[4, 3], 3, 8, 0.0, 7);
            let mut t = Tape::new();
            let z = m.logits(&mut t, &blocks, false, &mut rng);
            outputs.push(t.value(z).data.clone());
        }
        for i in 0..outputs.len() {
            for j in i + 1..outputs.len() {
                assert_ne!(outputs[i], outputs[j], "models {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn gradients_flow_to_all_params() {
        let blocks = toy_blocks();
        let labels = vec![0u32, 1, 2, 0, 1, 2];
        let mut rng = StdRng::seed_from_u64(4);
        for kind in all_kinds() {
            let mut m = build_model(kind, &[4, 3], 3, 8, 0.0, 7);
            let mut tape = Tape::new();
            let z = m.logits(&mut tape, &blocks, true, &mut rng);
            let loss = tape.cross_entropy_mean(z, &labels);
            let grads = tape.backward(loss);
            m.store_mut().zero_grads();
            tape.accumulate_param_grads(&grads, m.store_mut());
            let touched = m
                .store()
                .param_ids()
                .filter(|&id| m.store().grad(id).data.iter().any(|&g| g != 0.0))
                .count();
            // At least the output layer and projections must receive grads.
            assert!(touched >= 3, "{kind:?}: only {touched} params touched");
        }
    }
}
