//! Property-based tests over the HGNN heads: for arbitrary block shapes
//! and values, every architecture must produce finite logits of the right
//! shape, train without NaNs, and keep its parameter count consistent.

use freehgc_autograd::{Matrix, Tape};
use freehgc_hgnn::models::{build_model, ModelKind};
use freehgc_hgnn::trainer::{train, EvalData, TrainConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_kinds() -> [ModelKind; 5] {
    [
        ModelKind::HeteroSgc,
        ModelKind::SeHgnn,
        ModelKind::Han,
        ModelKind::Hgb,
        ModelKind::Hgt,
    ]
}

fn arb_blocks() -> impl Strategy<Value = (Vec<Matrix>, Vec<u32>)> {
    (2usize..12, 1usize..4, 2usize..4).prop_flat_map(|(rows, nblocks, classes)| {
        let dims = prop::collection::vec(1usize..6, nblocks);
        let labels = prop::collection::vec(0u32..classes as u32, rows);
        (dims, labels, Just(rows), Just(classes)).prop_map(|(dims, labels, rows, classes)| {
            let blocks: Vec<Matrix> = dims
                .iter()
                .enumerate()
                .map(|(i, &d)| Matrix::xavier(rows, d, i as u64 + 1))
                .collect();
            let _ = classes;
            (blocks, labels)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Logits are finite and correctly shaped for every architecture and
    /// any block configuration.
    #[test]
    fn logits_finite_any_shape((blocks, labels) in arb_blocks()) {
        let dims: Vec<usize> = blocks.iter().map(|b| b.cols).collect();
        let classes = (*labels.iter().max().unwrap_or(&0) + 1).max(2) as usize;
        let mut rng = StdRng::seed_from_u64(0);
        for kind in all_kinds() {
            let m = build_model(kind, &dims, classes, 8, 0.3, 3);
            let mut tape = Tape::new();
            let z = m.logits(&mut tape, &blocks, true, &mut rng);
            let v = tape.value(z);
            prop_assert_eq!(v.shape(), (blocks[0].rows, classes));
            prop_assert!(v.data.iter().all(|x| x.is_finite()), "{kind:?} produced NaN/Inf");
        }
    }

    /// A few training steps never produce non-finite losses or parameters.
    #[test]
    fn short_training_is_numerically_stable((blocks, labels) in arb_blocks()) {
        let dims: Vec<usize> = blocks.iter().map(|b| b.cols).collect();
        let classes = (*labels.iter().max().unwrap_or(&0) + 1).max(2) as usize;
        for kind in all_kinds() {
            let mut m = build_model(kind, &dims, classes, 8, 0.0, 4);
            let data = EvalData { blocks: &blocks, labels: &labels };
            let cfg = TrainConfig {
                epochs: 5,
                patience: 0,
                lr: 0.05,
                dropout: 0.0,
                weight_decay: 0.0,
                hidden: 8,
                seed: 0,
            };
            let report = train(&mut *m, &data, None, &cfg);
            prop_assert!(report.final_train_loss.is_finite(), "{kind:?} loss NaN");
            for id in m.store().param_ids() {
                prop_assert!(
                    m.store().value(id).data.iter().all(|v| v.is_finite()),
                    "{kind:?} parameter NaN after training"
                );
            }
        }
    }
}
