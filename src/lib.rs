//! FreeHGC — training-free heterogeneous graph condensation via data
//! selection (ICDE 2025), reproduced in Rust.
//!
//! This facade crate re-exports the public API of the workspace. See the
//! README for a tour and `examples/` for runnable scenarios.

/// Support utilities shared by the `examples/` and the smoke tests.
pub mod util {
    /// Smoke mode (`FREEHGC_SMOKE` set to anything but `"0"`): examples
    /// shrink their dataset and training schedule to a few seconds of
    /// work so `tests/examples_smoke.rs` can run them all cheaply.
    pub fn smoke_mode() -> bool {
        std::env::var("FREEHGC_SMOKE").is_ok_and(|v| v != "0")
    }
}

pub use freehgc_autograd as autograd;
pub use freehgc_baselines as baselines;
pub use freehgc_core as core;
pub use freehgc_datasets as datasets;
pub use freehgc_eval as eval;
pub use freehgc_hetgraph as hetgraph;
pub use freehgc_hgnn as hgnn;
pub use freehgc_parallel as parallel;
pub use freehgc_serve as serve;
pub use freehgc_sparse as sparse;
