//! Scenario: choosing a graph-reduction method for a movie-recommendation
//! knowledge base (IMDB-like).
//!
//! Compares all six reduction methods from the paper at one ratio:
//! accuracy of the downstream SeHGNN, condensation time, and storage —
//! the three axes of the paper's Fig. 1 comparison.
//!
//! ```bash
//! cargo run --release --example method_comparison
//! ```

use freehgc::baselines::{CoarseningHg, HGCondBaseline, HerdingHg, KCenterHg, RandomHg};
use freehgc::core::FreeHgc;
use freehgc::datasets::{generate, DatasetKind};
use freehgc::eval::pipeline::{Bench, EvalConfig};
use freehgc::eval::table::{secs, TextTable};
use freehgc::hetgraph::Condenser;

use freehgc::util::smoke_mode as smoke;

fn main() {
    let scale = if smoke() { 0.15 } else { 0.5 };
    let graph = generate(DatasetKind::Imdb, scale, 11);
    let cfg = if smoke() {
        EvalConfig::quick()
    } else {
        EvalConfig::default()
    };
    let bench = Bench::new(&graph, cfg);
    let ratio = 0.048;
    println!(
        "IMDB-like graph: {} nodes / {} edges; condensing every type to {:.1}%\n",
        graph.total_nodes(),
        graph.total_edges(),
        ratio * 100.0
    );
    let whole = bench.whole_graph(bench.cfg.model, &[0]);

    let methods: Vec<Box<dyn Condenser>> = vec![
        Box::new(RandomHg),
        Box::new(HerdingHg),
        Box::new(KCenterHg),
        Box::new(CoarseningHg),
        Box::new(HGCondBaseline::default()),
        Box::new(FreeHgc::default()),
    ];
    let mut table = TextTable::new(vec![
        "Method",
        "Accuracy",
        "% of whole",
        "Condense time",
        "Storage (KB)",
    ]);
    let train_seeds: &[u64] = if smoke() { &[0] } else { &[0, 1] };
    for m in &methods {
        let run = bench.run_method(m.as_ref(), ratio, train_seeds);
        // The storage measurement reuses the bench's shared context, so
        // this second condensation at the same spec is nearly free.
        let cond = m.condense_in(&bench.ctx, &bench.spec(ratio, 0));
        table.row(vec![
            m.name().to_string(),
            format!("{:.2}", run.stats.acc_mean),
            format!("{:.1}%", 100.0 * run.stats.acc_mean / whole.acc_mean),
            secs(run.stats.condense_secs),
            format!("{}", cond.graph.storage_bytes() / 1024),
        ]);
    }
    println!("{}", table.render());
    println!(
        "whole-graph accuracy {:.2} with {} KB storage",
        whole.acc_mean,
        graph.storage_bytes() / 1024
    );
    let st = bench.ctx.stats();
    println!(
        "shared-context cache over the whole comparison: {} hits / {} misses",
        st.total_hits(),
        st.total_misses()
    );
}
