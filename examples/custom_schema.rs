//! Scenario: condensing a user-defined heterogeneous schema.
//!
//! Builds an e-commerce heterogeneous graph from scratch — users (target,
//! labeled by segment), products, brands and reviews — assigns
//! condensation roles, and runs FreeHGC on it. Demonstrates the public
//! graph-construction API end to end without the dataset generators.
//!
//! ```bash
//! cargo run --release --example custom_schema
//! ```

use freehgc::core::FreeHgc;
use freehgc::hetgraph::{
    CondenseSpec, Condenser, FeatureMatrix, HeteroGraphBuilder, Role, Schema, Split,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    // 1. Declare the schema: users buy products; products belong to
    //    brands; users write reviews about products.
    let mut schema = Schema::new();
    let user = schema.add_node_type("user");
    let product = schema.add_node_type("product");
    let brand = schema.add_node_type("brand");
    let review = schema.add_node_type("review");
    let buys = schema.add_edge_type("buys", user, product);
    let belongs = schema.add_edge_type("belongs_to", product, brand);
    let writes = schema.add_edge_type("writes", user, review);
    let about = schema.add_edge_type("about", review, product);
    schema.set_target(user);
    // products bridge to brands → father; brands & reviews are leaves.
    schema.set_role(product, Role::Father);
    schema.set_role(brand, Role::Leaf);
    schema.set_role(review, Role::Leaf);
    schema.infer_roles();
    println!("{schema}");

    // 2. Populate it: 3 user segments drive both purchases and features.
    let (n_users, n_products, n_brands, n_reviews) = if freehgc::util::smoke_mode() {
        // Tiny sizes for the examples smoke test (tests/examples_smoke.rs).
        (150, 220, 15, 380)
    } else {
        (600, 900, 40, 1500)
    };
    let num_segments = 3;
    let mut rng = StdRng::seed_from_u64(42);
    let segments: Vec<u32> = (0..n_users)
        .map(|_| rng.gen_range(0..num_segments))
        .collect();
    let product_segment: Vec<u32> = (0..n_products)
        .map(|_| rng.gen_range(0..num_segments))
        .collect();

    let mut b = HeteroGraphBuilder::new(schema, vec![n_users, n_products, n_brands, n_reviews]);
    for u in 0..n_users {
        let seg = segments[u];
        for _ in 0..rng.gen_range(1..6) {
            // Mostly same-segment purchases.
            let p = loop {
                let cand = rng.gen_range(0..n_products as u32);
                if product_segment[cand as usize] == seg || rng.gen_bool(0.25) {
                    break cand;
                }
            };
            b.add_edge(buys, u as u32, p);
        }
        for _ in 0..rng.gen_range(0..3) {
            let r = rng.gen_range(0..n_reviews as u32);
            b.add_edge(writes, u as u32, r);
            b.add_edge(about, r, rng.gen_range(0..n_products as u32));
        }
    }
    for p in 0..n_products {
        b.add_edge(belongs, p as u32, rng.gen_range(0..n_brands as u32));
    }

    // Features: segment centroids + noise; dims differ per type.
    let mut seg_feature = |seg: u32, dim: usize, noise: f32| -> Vec<f32> {
        (0..dim)
            .map(|d| {
                let base = if d % num_segments as usize == seg as usize {
                    1.0
                } else {
                    0.0
                };
                base + noise * (rng.gen::<f32>() - 0.5)
            })
            .collect()
    };
    let mut fu = FeatureMatrix::zeros(0, 24);
    for &s in &segments {
        fu.push_row(&seg_feature(s, 24, 0.8));
    }
    let mut fp = FeatureMatrix::zeros(0, 16);
    for &s in &product_segment {
        fp.push_row(&seg_feature(s, 16, 0.8));
    }
    b.set_features(user, fu);
    b.set_features(product, fp);
    b.set_features(brand, FeatureMatrix::from_rows(8, vec![0.1; n_brands * 8]));
    b.set_features(
        review,
        FeatureMatrix::from_rows(12, vec![0.2; n_reviews * 12]),
    );
    b.set_labels(segments.clone(), num_segments as usize);
    b.set_split(Split::hgb(&segments, num_segments as usize, 0));
    let graph = b.build();
    println!(
        "built graph: {} nodes, {} edges",
        graph.total_nodes(),
        graph.total_edges()
    );

    // 3. Condense to 10%.
    let spec = CondenseSpec::new(0.10).with_max_hops(2);
    let cond = FreeHgc::default().condense(&graph, &spec);
    cond.validate(&graph);
    println!(
        "condensed: {} nodes ({:.1}%), {} edges, storage {} KB -> {} KB",
        cond.graph.total_nodes(),
        100.0 * cond.achieved_ratio(&graph),
        cond.graph.total_edges(),
        graph.storage_bytes() / 1024,
        cond.graph.storage_bytes() / 1024
    );
    // Reviews were synthesized into hyper-nodes; users/products selected.
    for t in graph.schema().node_type_ids() {
        let how = if cond.orig_ids[t.0 as usize].is_some() {
            "selected"
        } else {
            "synthesized"
        };
        println!(
            "  {:<8} {:>5} -> {:>4}  ({how})",
            graph.schema().node_type_name(t),
            graph.num_nodes(t),
            cond.graph.num_nodes(t),
        );
    }
}
