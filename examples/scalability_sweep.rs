//! Scenario: condensation-ratio sweep on the large AMiner-like graph —
//! the "flexible condensation ratio" property (paper §III "Our insight"
//! and Fig. 7): because FreeHGC is training-free, large ratios cost
//! little extra time and accuracy keeps improving, whereas training-based
//! condensation gets slower and plateaus.
//!
//! ```bash
//! cargo run --release --example scalability_sweep
//! ```

use freehgc::baselines::HGCondBaseline;
use freehgc::core::FreeHgc;
use freehgc::datasets::{generate, DatasetKind};
use freehgc::eval::pipeline::{Bench, EvalConfig};
use freehgc::eval::table::{secs, TextTable};
use freehgc::hgnn::trainer::TrainConfig;

use freehgc::util::smoke_mode as smoke;

fn main() {
    let scale = if smoke() { 0.05 } else { 0.25 };
    let graph = generate(DatasetKind::Aminer, scale, 5);
    println!(
        "AMiner-like graph: {} nodes / {} edges\n",
        graph.total_nodes(),
        graph.total_edges()
    );
    let cfg = EvalConfig {
        max_hops: 2,
        max_paths: 10,
        train: if smoke() {
            TrainConfig::quick()
        } else {
            TrainConfig {
                epochs: 60,
                patience: 15,
                ..TrainConfig::default()
            }
        },
        ..EvalConfig::default()
    };
    let bench = Bench::new(&graph, cfg);
    let ideal = bench.whole_graph(bench.cfg.model, &[0]);

    let mut table = TextTable::new(vec![
        "ratio",
        "FreeHGC acc",
        "FreeHGC time",
        "HGCond acc",
        "HGCond time",
    ]);
    let ratios: &[f64] = if smoke() {
        &[0.02, 0.2]
    } else {
        &[0.005, 0.02, 0.08, 0.2]
    };
    for &ratio in ratios {
        let fh = bench.run_method(&FreeHgc::default(), ratio, &[0]);
        let hg = bench.run_method(&HGCondBaseline::default(), ratio, &[0]);
        table.row(vec![
            format!("{:.1}%", ratio * 100.0),
            format!("{:.2}", fh.stats.acc_mean),
            secs(fh.stats.condense_secs),
            format!("{:.2}", hg.stats.acc_mean),
            secs(hg.stats.condense_secs),
        ]);
    }
    println!("{}", table.render());
    println!("whole-graph (ideal) accuracy: {:.2}", ideal.acc_mean);
    let st = bench.ctx.stats();
    println!(
        "shared-context cache over the sweep: {} hits / {} misses\n\
         (every ratio after the first reuses the same meta-path\n\
         compositions and full-graph propagated blocks)",
        st.total_hits(),
        st.total_misses()
    );
    println!(
        "\nNote how FreeHGC's condensation time barely grows with the ratio\n\
         while the training-based HGCond gets slower — and how FreeHGC's\n\
         accuracy climbs toward the ideal (the paper's Fig. 7 behaviour)."
    );
}
