//! Quickstart: condense a heterogeneous graph with FreeHGC and check the
//! quality of the condensed graph.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use freehgc::core::FreeHgc;
use freehgc::datasets::{generate, DatasetKind};
use freehgc::eval::pipeline::{Bench, EvalConfig};
use freehgc::hetgraph::{CondenseSpec, Condenser};

use freehgc::util::smoke_mode as smoke;

fn main() {
    // 1. Load a heterogeneous graph. Here: a synthetic ACM-like academic
    //    network (papers, authors, subjects, terms) with 3 paper classes.
    let scale = if smoke() { 0.15 } else { 0.5 };
    let graph = generate(DatasetKind::Acm, scale, 7);
    println!(
        "full graph: {} nodes, {} edges, {} node types",
        graph.total_nodes(),
        graph.total_edges(),
        graph.schema().num_node_types()
    );

    // 2. Condense to 5% of every node type — training-free, pre-processing
    //    only. `max_hops` bounds the meta-paths used by the selection
    //    criterion.
    let spec = CondenseSpec::new(0.05).with_max_hops(2).with_seed(0);
    let t0 = std::time::Instant::now();
    let condensed = FreeHgc::default().condense(&graph, &spec);
    println!(
        "condensed in {:?}: {} nodes ({:.1}% of original), {} edges",
        t0.elapsed(),
        condensed.graph.total_nodes(),
        100.0 * condensed.achieved_ratio(&graph),
        condensed.graph.total_edges()
    );
    println!(
        "storage: {} KB -> {} KB",
        graph.storage_bytes() / 1024,
        condensed.graph.storage_bytes() / 1024
    );

    // 3. Train SeHGNN on the condensed graph and evaluate on the *full*
    //    graph's held-out test split (the paper's protocol).
    let cfg = if smoke() {
        EvalConfig::quick()
    } else {
        EvalConfig::default()
    };
    let bench = Bench::new(&graph, cfg);
    let whole = bench.whole_graph(bench.cfg.model, &[0]);
    let condensed_acc = bench.eval_condensed(&condensed, bench.cfg.model, 0) * 100.0;
    println!(
        "test accuracy: whole graph {:.2}%, condensed graph {:.2}% ({:.1}% of whole)",
        whole.acc_mean,
        condensed_acc,
        100.0 * condensed_acc / whole.acc_mean
    );
}
