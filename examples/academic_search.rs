//! Scenario: scaling model selection on an academic network.
//!
//! The paper motivates condensation with workloads that train *many*
//! models on the same graph — hyper-parameter search, architecture
//! search, multi-stage pipelines (§I). This example runs a small
//! architecture search over all five HGNNs twice: once on the full
//! DBLP-like graph and once on a FreeHGC-condensed graph, comparing total
//! wall-clock and whether the search picks the same winner.
//!
//! ```bash
//! cargo run --release --example academic_search
//! ```

use freehgc::core::FreeHgc;
use freehgc::datasets::{generate, DatasetKind};
use freehgc::eval::pipeline::{Bench, EvalConfig};
use freehgc::hetgraph::Condenser;
use freehgc::hgnn::models::ModelKind;
use freehgc::hgnn::propagation::propagate;
use freehgc::hgnn::trainer::{predict, train, EvalData, TrainConfig};
use std::time::Instant;

use freehgc::util::smoke_mode as smoke;

fn search(
    bench: &Bench<'_>,
    train_blocks: &[freehgc::autograd::Matrix],
    train_labels: &[u32],
) -> Vec<(ModelKind, f64, f64)> {
    let mut results = Vec::new();
    let kinds = [
        ModelKind::HeteroSgc,
        ModelKind::SeHgnn,
        ModelKind::Han,
        ModelKind::Hgb,
        ModelKind::Hgt,
    ];
    for kind in kinds {
        let t0 = Instant::now();
        let dims: Vec<usize> = train_blocks.iter().map(|b| b.cols).collect();
        let mut model =
            freehgc::hgnn::models::build_model(kind, &dims, bench.graph.num_classes(), 64, 0.5, 1);
        let cfg = if smoke() {
            TrainConfig::quick()
        } else {
            TrainConfig {
                epochs: 80,
                patience: 15,
                ..TrainConfig::default()
            }
        };
        let data = EvalData {
            blocks: train_blocks,
            labels: train_labels,
        };
        let val_ids = &bench.graph.split().val;
        let val_blocks = bench.pf.gather(val_ids);
        let val_labels: Vec<u32> = val_ids
            .iter()
            .map(|&v| bench.graph.labels()[v as usize])
            .collect();
        let val = EvalData {
            blocks: &val_blocks,
            labels: &val_labels,
        };
        train(&mut *model, &data, Some(&val), &cfg);
        // Final quality on the full test split.
        let test_ids = &bench.graph.split().test;
        let test_blocks = bench.pf.gather(test_ids);
        let test_labels: Vec<u32> = test_ids
            .iter()
            .map(|&v| bench.graph.labels()[v as usize])
            .collect();
        let acc = freehgc::hgnn::metrics::accuracy(&predict(&*model, &test_blocks), &test_labels);
        results.push((kind, acc * 100.0, t0.elapsed().as_secs_f64()));
    }
    results
}

fn main() {
    let scale = if smoke() { 0.15 } else { 0.5 };
    let graph = generate(DatasetKind::Dblp, scale, 3);
    let bench = Bench::new(&graph, EvalConfig::default());
    println!(
        "DBLP-like network: {} nodes / {} edges\n",
        graph.total_nodes(),
        graph.total_edges()
    );

    // Search on the full graph.
    let ids = &graph.split().train;
    let full_blocks = bench.pf.gather(ids);
    let full_labels: Vec<u32> = ids.iter().map(|&v| graph.labels()[v as usize]).collect();
    let t0 = Instant::now();
    let full = search(&bench, &full_blocks, &full_labels);
    let full_time = t0.elapsed().as_secs_f64();

    // Search on a 2.4% condensed graph — through the bench's shared
    // context, so condensation reuses the meta-path compositions the
    // full-graph propagation above already paid for.
    let cond = FreeHgc::default().condense_in(&bench.ctx, &bench.spec(0.024, 0));
    let pf_cond = propagate(&cond.graph, bench.cfg.max_hops, bench.cfg.max_paths);
    let cond_labels = cond.graph.labels().to_vec();
    let t0 = Instant::now();
    let small = search(&bench, &pf_cond.blocks, &cond_labels);
    let small_time = t0.elapsed().as_secs_f64();

    println!("model            full-graph acc   condensed acc");
    println!("------------------------------------------------");
    for ((kind, facc, _), (_, cacc, _)) in full.iter().zip(&small) {
        println!("{:<16} {:>10.2}%      {:>10.2}%", kind.name(), facc, cacc);
    }
    let best_full = full
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let best_small = small
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "\nsearch time: {full_time:.2}s on the full graph vs {small_time:.2}s condensed ({:.1}× faster)",
        full_time / small_time
    );
    println!(
        "winner on full graph: {}; winner on condensed graph: {} — {}",
        best_full.0.name(),
        best_small.0.name(),
        if best_full.0 == best_small.0 {
            "the condensed search picked the same architecture"
        } else {
            "winners differ (acceptable when top models are within noise)"
        }
    );
}
