//! End-to-end serial/parallel equivalence: the full Algorithm-1 target
//! selection and the meta-path feature propagation must produce
//! bitwise-identical results at 1, 2, and N worker threads, and
//! repeated parallel runs must be deterministic. This is the
//! system-level counterpart of `crates/sparse/tests/prop_parallel.rs`.

use freehgc::core::selection::{condense_target, SelectionConfig};
use freehgc::datasets::{generate, tiny, DatasetKind};
use freehgc::hgnn::propagation::propagate;
use freehgc::parallel as par;
use std::sync::Mutex;

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    par::set_thread_override(Some(n));
    let out = f();
    par::set_thread_override(None);
    out
}

#[test]
fn condense_target_is_bitwise_identical_across_thread_counts() {
    let g = generate(DatasetKind::Acm, 0.2, 7);
    let cfg = SelectionConfig::default();
    let reference = with_threads(1, || condense_target(&g, 24, &cfg));
    for t in [2usize, 4] {
        let got = with_threads(t, || condense_target(&g, 24, &cfg));
        assert_eq!(got.selected, reference.selected, "selection at {t} threads");
        assert_eq!(got.scores, reference.scores, "scores at {t} threads");
    }
}

#[test]
fn condense_target_is_deterministic_across_repeated_parallel_runs() {
    let g = tiny(11);
    let cfg = SelectionConfig::default();
    let (a, b) = with_threads(4, || {
        (condense_target(&g, 8, &cfg), condense_target(&g, 8, &cfg))
    });
    assert_eq!(a.selected, b.selected);
    assert_eq!(a.scores, b.scores);
}

#[test]
fn propagation_blocks_are_bitwise_identical_across_thread_counts() {
    let g = generate(DatasetKind::Dblp, 0.2, 3);
    let reference = with_threads(1, || propagate(&g, 2, 12));
    for t in [2usize, 4] {
        let got = with_threads(t, || propagate(&g, 2, 12));
        assert_eq!(got.path_names, reference.path_names);
        for (gb, rb) in got.blocks.iter().zip(&reference.blocks) {
            assert_eq!(gb.data, rb.data, "block data at {t} threads");
        }
    }
}

#[test]
fn ablation_variants_stay_equivalent_in_parallel() {
    // Variant paths (no RF / no Jaccard) exercise different kernels;
    // they must be thread-count-invariant too.
    let g = tiny(12);
    for cfg in [
        SelectionConfig {
            use_rf: false,
            ..Default::default()
        },
        SelectionConfig {
            use_jaccard: false,
            ..Default::default()
        },
    ] {
        let reference = with_threads(1, || condense_target(&g, 10, &cfg));
        let got = with_threads(4, || condense_target(&g, 10, &cfg));
        assert_eq!(got.selected, reference.selected);
        assert_eq!(got.scores, reference.scores);
    }
}
