//! End-to-end integration: condense → train → evaluate on every dataset
//! family, exercising the full public API the way the experiment binaries
//! do (paper §V-B protocol).

use freehgc::core::FreeHgc;
use freehgc::datasets::{generate, DatasetKind};
use freehgc::eval::pipeline::{Bench, EvalConfig};
use freehgc::hetgraph::{CondenseSpec, Condenser};
use freehgc::hgnn::trainer::TrainConfig;

fn quick_cfg() -> EvalConfig {
    EvalConfig {
        max_hops: 2,
        max_paths: 10,
        train: TrainConfig {
            epochs: 30,
            patience: 8,
            ..TrainConfig::default()
        },
        ..EvalConfig::default()
    }
}

fn run_dataset(kind: DatasetKind, scale: f64, ratio: f64) {
    let g = generate(kind, scale, 0);
    let bench = Bench::new(&g, quick_cfg());
    let spec = CondenseSpec::new(ratio).with_max_hops(2);
    let cond = FreeHgc::default().condense(&g, &spec);
    cond.validate(&g);

    // Mean over a few training seeds: a single 30-epoch run on these
    // scaled-down graphs is noisy enough to dip below chance even when
    // the condensed graph is fine.
    let seeds = 3;
    let acc = (0..seeds)
        .map(|s| bench.eval_condensed(&cond, bench.cfg.model, s))
        .sum::<f64>()
        / seeds as f64;
    let chance = 1.0 / g.num_classes() as f64;
    assert!(
        acc > chance,
        "{kind:?}: condensed accuracy {acc:.3} at or below chance {chance:.3}"
    );
    assert!(
        cond.graph.storage_bytes() < g.storage_bytes(),
        "{kind:?}: condensation must reduce storage"
    );
}

#[test]
fn acm_end_to_end() {
    run_dataset(DatasetKind::Acm, 0.2, 0.1);
}

#[test]
fn dblp_end_to_end() {
    run_dataset(DatasetKind::Dblp, 0.15, 0.1);
}

#[test]
fn imdb_end_to_end() {
    run_dataset(DatasetKind::Imdb, 0.15, 0.1);
}

#[test]
fn freebase_end_to_end() {
    run_dataset(DatasetKind::Freebase, 0.15, 0.1);
}

#[test]
fn aminer_end_to_end() {
    run_dataset(DatasetKind::Aminer, 0.05, 0.05);
}

#[test]
fn mutag_end_to_end() {
    // MUTAG's base target count (340) is the smallest of all families;
    // scale 0.1 leaves ~34 labeled nodes, too few for even whole-graph
    // training to beat chance. 0.2 is the smallest scale at which the
    // task is learnable.
    run_dataset(DatasetKind::Mutag, 0.2, 0.08);
}

#[test]
fn am_end_to_end() {
    run_dataset(DatasetKind::Am, 0.1, 0.05);
}

/// Condensation at a fixed ratio must preserve the shape of the data it
/// summarizes: every node type survives with a nonzero budget, and the
/// per-class share of target labels in the condensed graph stays close
/// to the original distribution (FreeHGC allocates per-class budgets
/// proportionally, §IV).
#[test]
fn condensation_preserves_label_distribution() {
    for (kind, scale, ratio) in [
        (DatasetKind::Acm, 0.25, 0.1),
        (DatasetKind::Dblp, 0.15, 0.1),
        (DatasetKind::Am, 0.1, 0.05),
    ] {
        let g = generate(kind, scale, 0);
        let spec = CondenseSpec::new(ratio).with_max_hops(2);
        let cond = FreeHgc::default().condense(&g, &spec);
        cond.validate(&g);

        for t in g.schema().node_type_ids() {
            assert!(
                cond.graph.num_nodes(t) > 0,
                "{kind:?}: node type {t:?} lost all nodes at ratio {ratio}"
            );
        }

        let orig_hist = g.class_histogram();
        let orig_n: usize = orig_hist.iter().sum();
        let mut cond_hist = vec![0usize; g.num_classes()];
        for &y in cond.graph.labels() {
            cond_hist[y as usize] += 1;
        }
        let cond_n: usize = cond_hist.iter().sum();
        assert!(cond_n > 0, "{kind:?}: condensed graph has no labeled nodes");

        for (c, (&o, &s)) in orig_hist.iter().zip(&cond_hist).enumerate() {
            let orig_share = o as f64 / orig_n as f64;
            let cond_share = s as f64 / cond_n as f64;
            assert!(
                (orig_share - cond_share).abs() <= 0.10,
                "{kind:?}: class {c} share drifted {orig_share:.3} -> {cond_share:.3}"
            );
            // Any class the budget can represent must be represented.
            if (orig_share * cond_n as f64) >= 1.0 {
                assert!(s > 0, "{kind:?}: class {c} vanished from condensed labels");
            }
        }
    }
}

/// The whole-graph reference should beat the condensed graph in general
/// (condensation trades accuracy for size), and both must beat chance.
#[test]
fn whole_graph_dominates_condensed_on_average() {
    let g = generate(DatasetKind::Acm, 0.25, 1);
    let bench = Bench::new(&g, quick_cfg());
    let whole = bench.whole_graph(bench.cfg.model, &[0, 1]);
    let spec = CondenseSpec::new(0.05).with_max_hops(2);
    let cond = FreeHgc::default().condense(&g, &spec);
    let cond_acc = bench.eval_condensed(&cond, bench.cfg.model, 0) * 100.0;
    assert!(
        whole.acc_mean + 5.0 > cond_acc,
        "whole {:.1} vs condensed {:.1}",
        whole.acc_mean,
        cond_acc
    );
}

/// Higher condensation ratios must not systematically hurt: accuracy at
/// r=0.3 should be at least accuracy at r=0.05 minus tolerance (the
/// paper's "flexible condensation ratio" property, Fig. 7).
#[test]
fn accuracy_grows_with_ratio() {
    let g = generate(DatasetKind::Acm, 0.25, 2);
    let bench = Bench::new(&g, quick_cfg());
    let lo = bench.run_method(&FreeHgc::default(), 0.05, &[0]);
    let hi = bench.run_method(&FreeHgc::default(), 0.3, &[0]);
    assert!(
        hi.stats.acc_mean >= lo.stats.acc_mean - 8.0,
        "accuracy degraded sharply with ratio: {:.1} -> {:.1}",
        lo.stats.acc_mean,
        hi.stats.acc_mean
    );
}
