//! Serving-layer equivalence: the PR-4 cache layer on top of
//! [`CondenseContext`] must be invisible in every output.
//!
//! Three independent mechanisms are exercised, each at worker-thread
//! counts 1 and 4 (CI additionally runs the whole suite in its
//! `FREEHGC_THREADS` 1/4 matrix):
//!
//! * **Registry sharing** — condensing through a keyed
//!   [`ContextRegistry`] (graph fingerprint → shared context) must be
//!   bitwise-identical to fresh-per-call condensation, for FreeHGC and
//!   every baseline.
//! * **Cost-aware eviction** — a context whose composed-adjacency cache
//!   is byte-budgeted must produce the same bits as an unbounded one
//!   while never holding more resident bytes than the budget.
//! * **Diversity-bonus memoization** — a warm context that serves the
//!   Eq. 5–7 bonus from cache must select exactly the nodes a cold
//!   context selects.

use freehgc::baselines::{
    CoarseningHg, GCondBaseline, GradMatchConfig, HGCondBaseline, HerdingHg, KCenterHg, RandomHg,
};
use freehgc::core::selection::{condense_target_in, SelectionConfig};
use freehgc::core::FreeHgc;
use freehgc::datasets::tiny;
use freehgc::hetgraph::{
    CondenseContext, CondenseSpec, CondensedGraph, Condenser, ContextRegistry, HeteroGraph,
};
use freehgc::parallel as par;
use std::sync::{Arc, Mutex};

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    par::set_thread_override(Some(n));
    let out = f();
    par::set_thread_override(None);
    out
}

/// FreeHGC plus all five baselines of the paper's §V-A comparison, with
/// the gradient-matching methods on their quick schedules.
fn condensers() -> Vec<Box<dyn Condenser>> {
    let quick_gm = GradMatchConfig {
        outer: 3,
        inner: 2,
        relay_samples: 2,
        ..Default::default()
    };
    vec![
        Box::new(FreeHgc::default()),
        Box::new(RandomHg),
        Box::new(HerdingHg),
        Box::new(KCenterHg),
        Box::new(CoarseningHg),
        Box::new(HGCondBaseline {
            cfg: quick_gm.clone(),
            kmeans_iters: 3,
        }),
        Box::new(GCondBaseline {
            cfg: quick_gm,
            ..Default::default()
        }),
    ]
}

fn assert_graphs_equal(a: &HeteroGraph, b: &HeteroGraph, what: &str) {
    let schema = a.schema();
    for t in schema.node_type_ids() {
        assert_eq!(a.num_nodes(t), b.num_nodes(t), "{what}: node count {t:?}");
        assert_eq!(a.features(t), b.features(t), "{what}: features {t:?}");
    }
    for e in schema.edge_type_ids() {
        assert_eq!(a.adjacency(e), b.adjacency(e), "{what}: adjacency {e:?}");
    }
    assert_eq!(a.labels(), b.labels(), "{what}: labels");
    assert_eq!(a.split(), b.split(), "{what}: split");
}

fn assert_condensed_equal(a: &CondensedGraph, b: &CondensedGraph, what: &str) {
    assert_eq!(a.orig_ids, b.orig_ids, "{what}: provenance");
    assert_graphs_equal(&a.graph, &b.graph, what);
}

#[test]
fn registry_shared_matches_fresh_for_every_condenser() {
    let g = Arc::new(tiny(31));
    // ONE registry for the whole matrix: every method, ratio and thread
    // count resolves the same shared context by fingerprint.
    let registry = ContextRegistry::new();
    for threads in [1usize, 4] {
        for c in condensers() {
            for ratio in [0.15, 0.3] {
                let spec = CondenseSpec::new(ratio).with_max_hops(2).with_seed(5);
                let fresh = with_threads(threads, || c.condense(&g, &spec));
                let shared = with_threads(threads, || c.condense_shared(&registry, &g, &spec));
                assert_condensed_equal(
                    &fresh,
                    &shared,
                    &format!("{} @ ratio {ratio} / {threads}t", c.name()),
                );
            }
        }
    }
    // All specs share the default knobs, so the whole matrix must have
    // resolved to exactly one registered context — and hit it.
    assert_eq!(registry.len(), 1, "one graph, one context");
    let (hits, misses) = registry.lookup_stats();
    assert_eq!(misses, 1, "only the first resolution may miss");
    assert!(hits > 0, "the sweep must reuse the registered context");
}

#[test]
fn concurrent_cold_key_resolves_exactly_once() {
    // N requests race onto one cold registry key: single-flight must
    // elect exactly one builder and coalesce everyone else, at worker
    // budgets 1 and 4 (CI re-runs the suite across FREEHGC_THREADS too).
    for threads in [1usize, 4] {
        let g = Arc::new(tiny(35 + threads as u64));
        let registry = ContextRegistry::new();
        let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(1);
        let n = 8;
        let barrier = std::sync::Barrier::new(n);
        let ctxs: Vec<_> = with_threads(threads, || {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|_| {
                        s.spawn(|| {
                            barrier.wait();
                            registry.context_for(&g, &spec)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
            })
        });
        assert!(
            ctxs.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])),
            "{threads}t: all requests must share one context"
        );
        assert_eq!(
            registry.lookup_stats(),
            (n as u64 - 1, 1),
            "{threads}t: exactly one miss (the leader), N-1 hits"
        );
        assert_eq!(
            registry.fault_stats().duplicate_computes,
            0,
            "{threads}t: single-flight must prevent duplicate cold builds"
        );
        assert_eq!(registry.len(), 1);
    }
}

#[test]
fn evicting_cache_matches_unbounded_and_respects_budget() {
    let g = tiny(32);
    let spec = CondenseSpec::new(0.25).with_max_hops(2).with_seed(9);
    // Warm an unbounded context to learn the composed footprint.
    let unbounded = CondenseContext::for_spec(&g, &spec);
    let reference: Vec<CondensedGraph> = condensers()
        .iter()
        .map(|c| with_threads(1, || c.condense_in(&unbounded, &spec)))
        .collect();
    let budget = (unbounded.composed_bytes() / 2).max(64);

    for threads in [1usize, 4] {
        let evicting = CondenseContext::for_spec(&g, &spec).with_composed_budget(Some(budget));
        for (c, want) in condensers().iter().zip(&reference) {
            let got = with_threads(threads, || c.condense_in(&evicting, &spec));
            assert_condensed_equal(want, &got, &format!("{} evicting/{threads}t", c.name()));
        }
        let st = evicting.stats();
        assert!(
            st.composed_peak_bytes <= budget as u64,
            "{threads}t: peak {} exceeded budget {budget}",
            st.composed_peak_bytes
        );
        assert!(
            st.composed_evictions + st.composed_rejected > 0,
            "{threads}t: the halved budget must actually constrain the cache"
        );
    }
}

#[test]
fn warm_diversity_bonus_matches_cold_selection() {
    let g = tiny(33);
    let budget = 10;
    let cfg = SelectionConfig::default();
    for threads in [1usize, 4] {
        let cold = with_threads(threads, || {
            condense_target_in(&CondenseContext::new(&g), budget, &cfg)
        });
        let ctx = CondenseContext::new(&g);
        let first = with_threads(threads, || condense_target_in(&ctx, budget, &cfg));
        let after_first = ctx.stats().diversity;
        assert!(after_first.1 > 0, "{threads}t: first run computes bonuses");
        let second = with_threads(threads, || condense_target_in(&ctx, budget, &cfg));
        let after_second = ctx.stats().diversity;
        assert_eq!(
            after_second.1, after_first.1,
            "{threads}t: the warm run must not recompute any bonus"
        );
        assert!(
            after_second.0 > after_first.0,
            "{threads}t: the warm run must hit the diversity cache"
        );
        assert_eq!(cold.selected, first.selected, "{threads}t: cold vs fresh");
        assert_eq!(first.selected, second.selected, "{threads}t: cold vs warm");
        assert_eq!(first.scores, second.scores, "{threads}t: scores bitwise");
    }
}

#[test]
fn ratio_sweep_through_one_context_reuses_diversity_bonuses() {
    // The motivating workload: a ratio sweep on one graph. The bonus
    // depends on neither ratio nor seed, so only the first run may miss.
    let g = tiny(34);
    let ctx = CondenseContext::new(&g);
    let c = FreeHgc::default();
    let mut misses_after_first = None;
    for (i, ratio) in [0.1, 0.2, 0.3].into_iter().enumerate() {
        for seed in [0u64, 7] {
            let spec = CondenseSpec::new(ratio).with_max_hops(2).with_seed(seed);
            let shared = c.condense_in(&ctx, &spec);
            let fresh = c.condense(&g, &spec);
            assert_condensed_equal(&fresh, &shared, &format!("ratio {ratio} seed {seed}"));
        }
        if i == 0 {
            misses_after_first = Some(ctx.stats().diversity.1);
        }
    }
    let st = ctx.stats().diversity;
    assert_eq!(
        Some(st.1),
        misses_after_first,
        "later ratios/seeds must not add diversity misses"
    );
    assert!(st.0 > 0, "the sweep must hit the diversity cache");
}
