//! Cross-method invariants: every condenser in the workspace must produce
//! structurally valid graphs that respect the budget protocol of §V-B.

use freehgc::baselines::relay::GradMatchConfig;
use freehgc::baselines::{
    CoarseningHg, GCondBaseline, HGCondBaseline, HerdingHg, KCenterHg, RandomHg,
};
use freehgc::core::FreeHgc;
use freehgc::datasets::{generate, tiny, DatasetKind};
use freehgc::hetgraph::{CondenseSpec, Condenser};

fn all_methods() -> Vec<Box<dyn Condenser>> {
    let quick_gm = GradMatchConfig {
        outer: 3,
        inner: 2,
        relay_samples: 2,
        ..Default::default()
    };
    vec![
        Box::new(RandomHg),
        Box::new(HerdingHg),
        Box::new(KCenterHg),
        Box::new(CoarseningHg),
        Box::new(GCondBaseline {
            cfg: quick_gm.clone(),
            ..Default::default()
        }),
        Box::new(HGCondBaseline {
            cfg: GradMatchConfig {
                ops: true,
                relay_samples: 3,
                ..quick_gm
            },
            kmeans_iters: 3,
        }),
        Box::new(FreeHgc::default()),
    ]
}

#[test]
fn every_method_respects_budgets_and_validates() {
    let g = tiny(0);
    let spec = CondenseSpec::new(0.25).with_max_hops(2).with_seed(1);
    for m in all_methods() {
        let cond = m.condense(&g, &spec);
        cond.validate(&g);
        for t in g.schema().node_type_ids() {
            let budget = spec.budget_for(g.num_nodes(t));
            assert!(
                cond.graph.num_nodes(t) <= budget,
                "{}: type {:?} exceeded budget ({} > {budget})",
                m.name(),
                t,
                cond.graph.num_nodes(t)
            );
        }
        assert!(
            cond.graph.total_edges() > 0,
            "{}: condensed graph lost all edges",
            m.name()
        );
    }
}

#[test]
fn every_method_keeps_only_training_targets() {
    let g = tiny(1);
    let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(2);
    for m in all_methods() {
        let cond = m.condense(&g, &spec);
        for id in cond.target_ids() {
            assert!(
                g.split().train.contains(id),
                "{}: selected non-training target {id}",
                m.name()
            );
        }
    }
}

#[test]
fn every_method_preserves_label_correctness() {
    let g = tiny(2);
    let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(3);
    for m in all_methods() {
        let cond = m.condense(&g, &spec);
        for (k, &orig) in cond.target_ids().iter().enumerate() {
            assert_eq!(
                cond.graph.labels()[k],
                g.labels()[orig as usize],
                "{}: label mismatch at condensed node {k}",
                m.name()
            );
        }
    }
}

#[test]
fn every_method_is_deterministic_per_seed() {
    let g = tiny(3);
    let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(7);
    for m in all_methods() {
        let a = m.condense(&g, &spec);
        let b = m.condense(&g, &spec);
        assert_eq!(
            a.target_ids(),
            b.target_ids(),
            "{}: non-deterministic target selection",
            m.name()
        );
        assert_eq!(
            a.graph.total_edges(),
            b.graph.total_edges(),
            "{}: non-deterministic edges",
            m.name()
        );
    }
}

#[test]
fn schema_is_preserved_by_condensation() {
    let g = generate(DatasetKind::Freebase, 0.1, 0);
    let spec = CondenseSpec::new(0.1).with_max_hops(2);
    let cond = FreeHgc::default().condense(&g, &spec);
    assert_eq!(
        cond.graph.schema().num_node_types(),
        g.schema().num_node_types()
    );
    assert_eq!(
        cond.graph.schema().num_edge_types(),
        g.schema().num_edge_types()
    );
    assert_eq!(cond.graph.num_classes(), g.num_classes());
    // Feature dimensions per type are preserved (required for the
    // train-on-condensed / test-on-full protocol).
    for t in g.schema().node_type_ids() {
        assert_eq!(cond.graph.features(t).dim(), g.features(t).dim());
    }
}
