//! Cross-architecture integration tests (the Table I / Table IV claims).

use freehgc::core::FreeHgc;
use freehgc::datasets::{generate, DatasetKind};
use freehgc::eval::generalization::across_models;
use freehgc::eval::pipeline::{Bench, EvalConfig};
use freehgc::hgnn::models::ModelKind;
use freehgc::hgnn::trainer::TrainConfig;

fn quick_cfg() -> EvalConfig {
    EvalConfig {
        max_hops: 2,
        max_paths: 10,
        train: TrainConfig {
            epochs: 30,
            patience: 8,
            ..TrainConfig::default()
        },
        ..EvalConfig::default()
    }
}

#[test]
fn freehgc_condensed_graph_trains_every_architecture_above_chance() {
    let g = generate(DatasetKind::Acm, 0.2, 0);
    let bench = Bench::new(&g, quick_cfg());
    let models = [
        ModelKind::HeteroSgc,
        ModelKind::SeHgnn,
        ModelKind::Han,
        ModelKind::Hgb,
        ModelKind::Hgt,
    ];
    let row = across_models(&bench, &FreeHgc::default(), 0.15, &models, &[0]);
    let chance = 100.0 / g.num_classes() as f64;
    for (mk, acc, _) in &row.per_model {
        assert!(
            *acc > chance + 10.0,
            "{mk:?} reached only {acc:.1} (chance {chance:.1})"
        );
    }
}

#[test]
fn condensed_average_is_within_reach_of_whole_average() {
    let g = generate(DatasetKind::Dblp, 0.15, 1);
    let bench = Bench::new(&g, quick_cfg());
    let models = [ModelKind::Hgb, ModelKind::SeHgnn];
    let row = across_models(&bench, &FreeHgc::default(), 0.2, &models, &[0]);
    let whole = freehgc::eval::generalization::whole_average(&bench, &models, &[0]);
    // The paper reports FreeHGC reaching ~98% of the whole average; at our
    // reduced test scale we only require a non-degenerate fraction.
    assert!(
        row.condensed_avg > 0.6 * whole,
        "condensed avg {:.1} too far from whole avg {:.1}",
        row.condensed_avg,
        whole
    );
}
