//! On-disk snapshot equivalence: warm-starting from a persisted context
//! snapshot must be invisible in every output.
//!
//! Two contracts, each exercised at worker-thread counts 1 and 4 (CI
//! additionally runs the whole suite in its `FREEHGC_THREADS` 1/4
//! matrix):
//!
//! * **Round trip** — a condensation served from a snapshot loaded into
//!   a fresh registry (a stand-in for a restarted process) must be
//!   bitwise-identical to the run that produced the snapshot, for
//!   FreeHGC and every baseline, and must not recompute anything the
//!   snapshot carried (composed adjacencies, influence vectors,
//!   diversity bonuses, propagated blocks).
//! * **Corruption safety** — a truncated file, a flipped byte, a wrong
//!   format version and a wrong-fingerprint file must each load as a
//!   clean cold miss: no panic, a counted rejection, nothing installed,
//!   and bit-identical outputs from cold compute.

use freehgc::baselines::{
    CoarseningHg, GCondBaseline, GradMatchConfig, HGCondBaseline, HerdingHg, KCenterHg, RandomHg,
};
use freehgc::core::FreeHgc;
use freehgc::datasets::tiny;
use freehgc::hetgraph::{
    snapshot_file_name, CondenseSpec, CondensedGraph, Condenser, ContextRegistry, HeteroGraph,
};
use freehgc::hgnn::propagation::{propagate_ctx, PropagatedFeaturesCodec};
use freehgc::parallel as par;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    par::set_thread_override(Some(n));
    let out = f();
    par::set_thread_override(None);
    out
}

/// FreeHGC plus all five baselines of the paper's §V-A comparison, with
/// the gradient-matching methods on their quick schedules.
fn condensers() -> Vec<Box<dyn Condenser>> {
    let quick_gm = GradMatchConfig {
        outer: 3,
        inner: 2,
        relay_samples: 2,
        ..Default::default()
    };
    vec![
        Box::new(FreeHgc::default()),
        Box::new(RandomHg),
        Box::new(HerdingHg),
        Box::new(KCenterHg),
        Box::new(CoarseningHg),
        Box::new(HGCondBaseline {
            cfg: quick_gm.clone(),
            kmeans_iters: 3,
        }),
        Box::new(GCondBaseline {
            cfg: quick_gm,
            ..Default::default()
        }),
    ]
}

fn assert_graphs_equal(a: &HeteroGraph, b: &HeteroGraph, what: &str) {
    let schema = a.schema();
    for t in schema.node_type_ids() {
        assert_eq!(a.num_nodes(t), b.num_nodes(t), "{what}: node count {t:?}");
        assert_eq!(a.features(t), b.features(t), "{what}: features {t:?}");
    }
    for e in schema.edge_type_ids() {
        assert_eq!(a.adjacency(e), b.adjacency(e), "{what}: adjacency {e:?}");
    }
    assert_eq!(a.labels(), b.labels(), "{what}: labels");
    assert_eq!(a.split(), b.split(), "{what}: split");
}

fn assert_condensed_equal(a: &CondensedGraph, b: &CondensedGraph, what: &str) {
    assert_eq!(a.orig_ids, b.orig_ids, "{what}: provenance");
    assert_graphs_equal(&a.graph, &b.graph, what);
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fhgc-snapshot-eq-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn snapshot_round_trip_matches_fresh_for_every_condenser() {
    let g = Arc::new(tiny(41));
    let spec = CondenseSpec::new(0.25).with_max_hops(2).with_seed(5);
    let dir = temp_dir("roundtrip");

    // "Process one": warm one registry context through every condenser
    // (and feature propagation), then persist it.
    let reg1 = ContextRegistry::new();
    let reference: Vec<CondensedGraph> = condensers()
        .iter()
        .map(|c| with_threads(1, || c.condense_shared(&reg1, &g, &spec)))
        .collect();
    let ctx1 = reg1.context_for(&g, &spec);
    let pf1 = propagate_ctx(&ctx1, 2, 16);
    let path = reg1
        .persist_with(&dir, &g, &spec, Some(&PropagatedFeaturesCodec))
        .expect("persist");
    assert!(path.ends_with(snapshot_file_name(
        g.fingerprint(),
        spec.max_row_nnz,
        spec.composed_cache_bytes
    )));

    for threads in [1usize, 4] {
        // "Process two": a fresh registry resolves warm from disk.
        let reg2 = ContextRegistry::new();
        let ctx2 = reg2.resolve_or_load_with(&dir, &g, &spec, Some(&PropagatedFeaturesCodec));
        assert_eq!(reg2.snapshot_stats(), (1, 0), "{threads}t: must load");
        let before = ctx2.stats();
        for (c, want) in condensers().iter().zip(&reference) {
            let got = with_threads(threads, || c.condense_in(&ctx2, &spec));
            assert_condensed_equal(want, &got, &format!("{} snapshot/{threads}t", c.name()));
        }
        // Everything the snapshot carried must be served, not redone.
        let after = ctx2.stats();
        assert_eq!(after.factors.1, before.factors.1, "{threads}t: factors");
        assert_eq!(after.composed.1, before.composed.1, "{threads}t: composed");
        assert_eq!(
            after.influence.1, before.influence.1,
            "{threads}t: influence"
        );
        assert_eq!(
            after.diversity.1, before.diversity.1,
            "{threads}t: diversity"
        );
        let pf2 = propagate_ctx(&ctx2, 2, 16);
        let propagated = ctx2.stats().propagated;
        assert_eq!(
            propagated.1, before.propagated.1,
            "{threads}t: propagated blocks come from the snapshot, never recomputed"
        );
        assert!(propagated.0 > 0, "{threads}t: the loaded blocks must serve");
        assert_eq!(pf2.path_names, pf1.path_names, "{threads}t: block names");
        for (a, b) in pf2.blocks.iter().zip(&pf1.blocks) {
            assert_eq!(a.data, b.data, "{threads}t: propagated block bits");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_snapshots_load_as_clean_cold_misses() {
    let g = Arc::new(tiny(42));
    let spec = CondenseSpec::new(0.3).with_max_hops(2).with_seed(3);
    let dir = temp_dir("corrupt");

    // Persist a genuinely warm snapshot, then a cold reference run.
    let reg1 = ContextRegistry::new();
    let reference = with_threads(1, || FreeHgc::default().condense_shared(&reg1, &g, &spec));
    let path = reg1.persist(&dir, &g, &spec).expect("persist");
    let good = std::fs::read(&path).unwrap();
    assert!(good.len() > 64, "snapshot must have real content");

    let mut cases: Vec<(&str, Vec<u8>)> = vec![
        ("truncated to a third", good[..good.len() / 3].to_vec()),
        ("truncated by one byte", good[..good.len() - 1].to_vec()),
        ("empty file", Vec::new()),
    ];
    let mut flipped = good.clone();
    let mid = flipped.len() * 2 / 3;
    flipped[mid] ^= 0x08;
    cases.push(("flipped payload byte", flipped));
    let mut versioned = good.clone();
    versioned[8] = 0xEE; // first byte of the little-endian version field
    cases.push(("wrong format version", versioned));

    for (what, bytes) in cases {
        std::fs::write(&path, &bytes).unwrap();
        for threads in [1usize, 4] {
            let reg = ContextRegistry::new();
            let ctx = reg.resolve_or_load_with(&dir, &g, &spec, Some(&PropagatedFeaturesCodec));
            assert_eq!(
                reg.snapshot_stats(),
                (0, 1),
                "{what}/{threads}t: a counted rejection, never a load"
            );
            assert_eq!(ctx.composed_len(), 0, "{what}/{threads}t: cold");
            let got = with_threads(threads, || FreeHgc::default().condense_in(&ctx, &spec));
            assert_condensed_equal(&reference, &got, &format!("{what}/{threads}t"));
        }
    }

    // A *valid* snapshot of a different graph copied under this graph's
    // canonical name: the fingerprint check rejects it.
    let g2 = Arc::new(tiny(43));
    assert_ne!(g.fingerprint(), g2.fingerprint(), "distinct fixtures");
    let regx = ContextRegistry::new();
    with_threads(1, || FreeHgc::default().condense_shared(&regx, &g2, &spec));
    let other = regx.persist(&dir, &g2, &spec).expect("persist other");
    std::fs::copy(&other, &path).unwrap();
    for threads in [1usize, 4] {
        let reg = ContextRegistry::new();
        let ctx = reg.resolve_or_load(&dir, &g, &spec);
        assert_eq!(
            reg.snapshot_stats(),
            (0, 1),
            "wrong fingerprint/{threads}t: rejected"
        );
        let got = with_threads(threads, || FreeHgc::default().condense_in(&ctx, &spec));
        assert_condensed_equal(&reference, &got, &format!("wrong fingerprint/{threads}t"));
    }
    std::fs::remove_dir_all(&dir).ok();
}
