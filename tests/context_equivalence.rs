//! Shared-context equivalence: condensing through one warm, reused
//! [`CondenseContext`] must be bitwise-identical to fresh-per-call
//! condensation — for FreeHGC and every baseline, across a ratio sweep,
//! and at any thread count. A context memoizes deterministic pure
//! functions of the full graph, so caching must be invisible in the
//! outputs; this suite is the system-level enforcement of that contract
//! (the context-layer counterpart of `tests/parallel_equivalence.rs`,
//! and CI runs it in the same `FREEHGC_THREADS` 1/4 matrix).

use freehgc::baselines::{
    CoarseningHg, GCondBaseline, GradMatchConfig, HGCondBaseline, HerdingHg, KCenterHg, RandomHg,
};
use freehgc::core::FreeHgc;
use freehgc::datasets::tiny;
use freehgc::hetgraph::{CondenseContext, CondenseSpec, CondensedGraph, Condenser, HeteroGraph};
use freehgc::hgnn::propagation::{propagate, propagate_ctx};
use freehgc::parallel as par;
use std::sync::Mutex;

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    par::set_thread_override(Some(n));
    let out = f();
    par::set_thread_override(None);
    out
}

/// FreeHGC plus all five baselines of the paper's §V-A comparison, with
/// the gradient-matching methods on their quick schedules.
fn condensers() -> Vec<Box<dyn Condenser>> {
    let quick_gm = GradMatchConfig {
        outer: 3,
        inner: 2,
        relay_samples: 2,
        ..Default::default()
    };
    vec![
        Box::new(FreeHgc::default()),
        Box::new(RandomHg),
        Box::new(HerdingHg),
        Box::new(KCenterHg),
        Box::new(CoarseningHg),
        Box::new(HGCondBaseline {
            cfg: quick_gm.clone(),
            kmeans_iters: 3,
        }),
        Box::new(GCondBaseline {
            cfg: quick_gm,
            ..Default::default()
        }),
    ]
}

fn assert_graphs_equal(a: &HeteroGraph, b: &HeteroGraph, what: &str) {
    let schema = a.schema();
    for t in schema.node_type_ids() {
        assert_eq!(a.num_nodes(t), b.num_nodes(t), "{what}: node count {t:?}");
        assert_eq!(a.features(t), b.features(t), "{what}: features {t:?}");
    }
    for e in schema.edge_type_ids() {
        assert_eq!(a.adjacency(e), b.adjacency(e), "{what}: adjacency {e:?}");
    }
    assert_eq!(a.labels(), b.labels(), "{what}: labels");
    assert_eq!(a.split(), b.split(), "{what}: split");
}

fn assert_condensed_equal(a: &CondensedGraph, b: &CondensedGraph, what: &str) {
    assert_eq!(a.orig_ids, b.orig_ids, "{what}: provenance");
    assert_graphs_equal(&a.graph, &b.graph, what);
}

#[test]
fn shared_context_matches_fresh_for_every_condenser_across_ratios() {
    let g = tiny(21);
    // ONE context for the whole sweep: every method and ratio reuses it.
    let ctx = CondenseContext::new(&g);
    for c in condensers() {
        for ratio in [0.15, 0.3] {
            let spec = CondenseSpec::new(ratio).with_max_hops(2).with_seed(5);
            let fresh = c.condense(&g, &spec);
            let shared = c.condense_in(&ctx, &spec);
            assert_condensed_equal(&fresh, &shared, &format!("{} @ ratio {ratio}", c.name()));
        }
    }
    // The sweep must actually have exercised the caches, or this test
    // proves nothing about warm-context behaviour.
    assert!(
        ctx.stats().total_hits() > 0,
        "shared context recorded no cache hits across the sweep: {:?}",
        ctx.stats()
    );
}

#[test]
fn warm_context_at_four_threads_matches_fresh_serial_run() {
    // The strongest combination of the two determinism contracts: a
    // cold, fresh-per-call serial run versus a warm shared context
    // driven at 4 worker threads.
    let g = tiny(22);
    let ctx = CondenseContext::new(&g);
    for c in condensers() {
        let spec = CondenseSpec::new(0.25).with_max_hops(2).with_seed(9);
        let reference = with_threads(1, || c.condense(&g, &spec));
        // First warm-context run fills the caches, second one hits them;
        // both must match the serial fresh reference.
        let (first, second) = with_threads(4, || {
            (c.condense_in(&ctx, &spec), c.condense_in(&ctx, &spec))
        });
        assert_condensed_equal(&reference, &first, &format!("{} cold-ctx/4t", c.name()));
        assert_condensed_equal(&reference, &second, &format!("{} warm-ctx/4t", c.name()));
    }
}

#[test]
fn eval_features_match_between_fresh_and_shared_context() {
    let g = tiny(23);
    let ctx = CondenseContext::new(&g);
    for (hops, paths) in [(1, 8), (2, 12), (2, 24)] {
        let fresh = propagate(&g, hops, paths);
        let shared = propagate_ctx(&ctx, hops, paths);
        assert_eq!(
            fresh.path_names, shared.path_names,
            "({hops},{paths}): block names"
        );
        for (i, (fb, sb)) in fresh.blocks.iter().zip(&shared.blocks).enumerate() {
            assert_eq!(fb.data, sb.data, "({hops},{paths}): block {i}");
        }
    }
    // Thread-count invariance of the cached blocks: a warm hit returns
    // the same Arc regardless of the thread budget it is read under.
    let warm = with_threads(4, || propagate_ctx(&ctx, 2, 12));
    let fresh_parallel = with_threads(4, || propagate(&g, 2, 12));
    for (wb, fb) in warm.blocks.iter().zip(&fresh_parallel.blocks) {
        assert_eq!(wb.data, fb.data);
    }
}

#[test]
fn condense_spec_caps_flow_through_both_layers() {
    // The max_paths knob must change condensation and propagation in
    // lockstep: a spec with a tiny cap selects from (and propagates
    // over) the same reduced path family.
    let g = tiny(24);
    let ctx = CondenseContext::new(&g);
    let narrow = CondenseSpec::new(0.3).with_max_hops(2).with_max_paths(2);
    let wide = CondenseSpec::new(0.3).with_max_hops(2).with_max_paths(24);
    let c = FreeHgc::default();
    let a = c.condense_in(&ctx, &narrow);
    let b = c.condense_in(&ctx, &wide);
    // Both are valid condensations of the same graph...
    a.validate(&g);
    b.validate(&g);
    // ...and propagation under the same caps yields matching block
    // families for full and condensed graphs (the alignment the
    // train-on-condensed / test-on-full protocol depends on).
    let pf_full = propagate_ctx(&ctx, 2, 2);
    let pf_cond = propagate(&a.graph, 2, 2);
    assert_eq!(pf_full.path_names, pf_cond.path_names);
}
