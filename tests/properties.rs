//! Cross-crate property-based tests (proptest) on the core invariants of
//! the condensation pipeline.

use freehgc::core::selection::{celf_greedy, jaccard_sorted};
use freehgc::hetgraph::proportional_allocation;
use freehgc::sparse::{Bitset, CsrMatrix};
use proptest::prelude::*;

/// Random small sparse matrix as an edge list.
fn arb_edges(rows: usize, cols: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec(
        ((0..rows as u32), (0..cols as u32)),
        0..(rows * cols).min(128),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR round-trips through dense representation.
    #[test]
    fn csr_dense_roundtrip(edges in arb_edges(8, 6)) {
        let m = CsrMatrix::from_edges(8, 6, &edges);
        let back = CsrMatrix::from_dense(8, 6, &m.to_dense(), 0.0);
        prop_assert_eq!(m, back);
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(edges in arb_edges(7, 9)) {
        let m = CsrMatrix::from_edges(7, 9, &edges);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    /// SpGEMM agrees with the dense reference product.
    #[test]
    fn spgemm_matches_dense(ea in arb_edges(6, 5), eb in arb_edges(5, 7)) {
        let a = CsrMatrix::from_edges(6, 5, &ea);
        let b = CsrMatrix::from_edges(5, 7, &eb);
        let c = a.spgemm(&b);
        let (da, db) = (a.to_dense(), b.to_dense());
        let mut dc = vec![0f32; 6 * 7];
        for i in 0..6 {
            for k in 0..5 {
                let v = da[i * 5 + k];
                if v == 0.0 { continue; }
                for j in 0..7 {
                    dc[i * 7 + j] += v * db[k * 7 + j];
                }
            }
        }
        let got = c.to_dense();
        for (x, y) in got.iter().zip(&dc) {
            prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    /// Row normalization produces stochastic rows (or empty rows).
    #[test]
    fn row_normalization_is_stochastic(edges in arb_edges(10, 10)) {
        let m = CsrMatrix::from_edges(10, 10, &edges).row_normalized();
        for r in 0..10 {
            let s: f32 = m.row(r).1.iter().sum();
            prop_assert!(s == 0.0 || (s - 1.0).abs() < 1e-4);
        }
    }

    /// Bitset counting matches a reference HashSet implementation.
    #[test]
    fn bitset_matches_hashset(items in prop::collection::vec(0usize..256, 0..80)) {
        let mut bs = Bitset::new(256);
        let mut set = std::collections::HashSet::new();
        for &i in &items {
            prop_assert_eq!(bs.insert(i), set.insert(i));
        }
        prop_assert_eq!(bs.count(), set.len());
        let collected: Vec<usize> = bs.iter().collect();
        let mut expect: Vec<usize> = set.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(collected, expect);
    }

    /// Jaccard index is symmetric and bounded.
    #[test]
    fn jaccard_symmetric_bounded(
        a in prop::collection::btree_set(0u32..64, 0..20),
        b in prop::collection::btree_set(0u32..64, 0..20),
    ) {
        let av: Vec<u32> = a.into_iter().collect();
        let bv: Vec<u32> = b.into_iter().collect();
        let j1 = jaccard_sorted(&av, &bv);
        let j2 = jaccard_sorted(&bv, &av);
        prop_assert!((j1 - j2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&j1));
    }

    /// Proportional allocation: sums to min(budget, total), respects
    /// caps, gives minimums when the budget allows.
    #[test]
    fn allocation_invariants(
        counts in prop::collection::vec(0usize..40, 1..8),
        budget in 0usize..80,
    ) {
        let alloc = proportional_allocation(&counts, budget);
        let total: usize = counts.iter().sum();
        prop_assert_eq!(alloc.iter().sum::<usize>(), budget.min(total));
        for (a, c) in alloc.iter().zip(&counts) {
            prop_assert!(a <= c, "allocation exceeds cap");
        }
        let nonempty = counts.iter().filter(|&&c| c > 0).count();
        if budget >= nonempty {
            for (a, c) in alloc.iter().zip(&counts) {
                if *c > 0 {
                    prop_assert!(*a >= 1, "non-empty group starved");
                }
            }
        }
    }

    /// Greedy max-coverage achieves at least (1 − 1/e) of the brute-force
    /// optimum on tiny instances — the approximation guarantee the paper
    /// invokes for its criterion (Nemhauser et al.).
    #[test]
    fn celf_greedy_approximation_guarantee(edges in arb_edges(6, 10)) {
        let adj = CsrMatrix::from_edges(6, 10, &edges);
        let pool: Vec<u32> = (0..6).collect();
        let budget = 2usize;
        let (sel, _) = celf_greedy(&adj, &pool, budget, 1.0, &[0.0; 6]);

        // Brute force over all pairs.
        let coverage = |s: &[u32]| {
            let mut b = Bitset::new(10);
            for &v in s {
                b.insert_all(adj.row_indices(v as usize));
            }
            b.count()
        };
        let mut best = 0usize;
        for i in 0..6u32 {
            for j in (i + 1)..6u32 {
                best = best.max(coverage(&[i, j]));
            }
        }
        let got = coverage(&sel);
        prop_assert!(
            got as f64 >= (1.0 - 1.0 / std::f64::consts::E) * best as f64 - 1e-9,
            "greedy {got} below guarantee for optimum {best}"
        );
    }
}
