//! Smoke test for the `examples/` directory: every example must run to
//! completion on a tiny synthetic dataset so examples can't silently rot.
//!
//! Each example honors `FREEHGC_SMOKE=1` (see `freehgc::util::smoke_mode`),
//! which shrinks its dataset and training configuration to a few seconds
//! of work. The test shells out to `cargo run --release --example <name>`.
//! Note `cargo build --release` does NOT build examples, so the first run
//! after a target wipe compiles them here (the library dependencies are
//! warm from the tier-1 release build; cargo's target-dir lock makes the
//! nested invocation safe). Subsequent runs are incremental and fast.

use std::io::Read;
use std::process::{Child, ChildStderr, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

const EXAMPLES: &[&str] = &[
    "quickstart",
    "custom_schema",
    "academic_search",
    "method_comparison",
    "scalability_sweep",
];

/// Generous ceiling per example: covers a cold compile of the example
/// binary plus its smoke-mode run, while still catching a hang (e.g. a
/// training loop that stops converging) instead of wedging CI forever.
const PER_EXAMPLE_TIMEOUT: Duration = Duration::from_secs(300);

/// Waits with a deadline while two background threads drain the child's
/// pipes (an undrained pipe fills at ~64KB and blocks the child forever,
/// which would masquerade as a timeout). Returns `None` on timeout.
fn wait_with_timeout(
    child: &mut Child,
    stdout: ChildStdout,
    stderr: ChildStderr,
) -> (Option<std::process::ExitStatus>, String, String) {
    let out_reader = std::thread::spawn(move || {
        let mut buf = Vec::new();
        let mut stdout = stdout;
        let _ = stdout.read_to_end(&mut buf);
        buf
    });
    let err_reader = std::thread::spawn(move || {
        let mut buf = Vec::new();
        let mut stderr = stderr;
        let _ = stderr.read_to_end(&mut buf);
        buf
    });

    let start = Instant::now();
    let status = loop {
        match child.try_wait().expect("failed to poll example process") {
            Some(status) => break Some(status),
            None if start.elapsed() > PER_EXAMPLE_TIMEOUT => {
                let _ = child.kill();
                let _ = child.wait();
                break None;
            }
            None => std::thread::sleep(Duration::from_millis(100)),
        }
    };
    // Killing the child closes its pipe ends, so the readers see EOF.
    let out = out_reader.join().expect("stdout reader panicked");
    let err = err_reader.join().expect("stderr reader panicked");
    (
        status,
        String::from_utf8_lossy(&out).into_owned(),
        String::from_utf8_lossy(&err).into_owned(),
    )
}

#[test]
fn every_example_runs_in_smoke_mode() {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for name in EXAMPLES {
        let mut child = Command::new(cargo)
            .args(["run", "--release", "--example", name])
            .current_dir(manifest_dir)
            .env("FREEHGC_SMOKE", "1")
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
        let stdout = child.stdout.take().expect("stdout was piped");
        let stderr = child.stderr.take().expect("stderr was piped");

        let (status, out, err) = wait_with_timeout(&mut child, stdout, stderr);
        let Some(status) = status else {
            panic!(
                "example {name} did not finish within {PER_EXAMPLE_TIMEOUT:?}\n\
                 --- stdout so far ---\n{out}\n--- stderr so far ---\n{err}"
            );
        };
        assert!(
            status.success(),
            "example {name} failed with {:?}\n--- stdout ---\n{out}\n--- stderr ---\n{err}",
            status.code(),
        );
        assert!(
            !out.is_empty(),
            "example {name} produced no output in smoke mode"
        );
    }
}
