//! Chaos drills: every injected fault must degrade to a counted
//! recovery with bitwise-identical output.
//!
//! Requires the `failpoints` cargo feature (`cargo test --features
//! failpoints`); without it the whole file compiles away. Failpoint
//! state is process-global, so every test serializes on [`FP_LOCK`] and
//! resets the table on entry and exit.

#![cfg(feature = "failpoints")]

use freehgc::core::FreeHgc;
use freehgc::datasets::tiny;
use freehgc::eval::ChaosKnobs;
use freehgc::hetgraph::failpoints as fp;
use freehgc::hetgraph::{CondenseSpec, Condenser, ContextRegistry};
use std::sync::{Arc, Mutex};

static FP_LOCK: Mutex<()> = Mutex::new(());

/// Serializes a drill and guarantees a clean failpoint table on both
/// sides, even when the drill itself panics.
fn drill<T>(f: impl FnOnce() -> T) -> T {
    let _guard = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fp::reset();
    let out = f();
    fp::reset();
    out
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fhgc-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn condenser_panic_recovers_and_registry_keeps_serving() {
    drill(|| {
        let g = Arc::new(tiny(41));
        let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(3);
        let c = FreeHgc::default();
        // Fault-free reference, through its own registry.
        let want = c.condense_shared(&ContextRegistry::new(), &g, &spec);

        let reg = ContextRegistry::new();
        fp::arm(fp::CONDENSE_PANIC, 1);
        let got = c.condense_shared(&reg, &g, &spec);
        assert_eq!(fp::fired(fp::CONDENSE_PANIC), 1, "the fault must fire");
        assert_eq!(
            reg.fault_stats().panics_recovered,
            1,
            "the panic must be caught and counted"
        );
        assert_eq!(got.orig_ids, want.orig_ids, "retry output bitwise");

        // The registry is not wedged: a second request serves warm with
        // the same bits and no further recoveries.
        let again = c.condense_shared(&reg, &g, &spec);
        assert_eq!(again.orig_ids, want.orig_ids);
        assert_eq!(reg.fault_stats().panics_recovered, 1);
        let (hits, misses) = reg.lookup_stats();
        assert_eq!(misses, 1, "one cold build despite the injected panic");
        assert!(hits >= 1);
    });
}

#[test]
fn persistent_condenser_panic_propagates_after_bounded_retries() {
    drill(|| {
        let g = Arc::new(tiny(42));
        let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(3);
        let reg = ContextRegistry::new();
        fp::arm(fp::CONDENSE_PANIC, u64::MAX);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            FreeHgc::default().condense_shared(&reg, &g, &spec)
        }));
        let payload = err.expect_err("a persistent fault must escape");
        let msg = payload
            .downcast_ref::<String>()
            .expect("injected panics carry String payloads");
        assert!(
            msg.contains(fp::CONDENSE_PANIC),
            "payload must name the failpoint, got: {msg}"
        );
        assert!(reg.fault_stats().panics_recovered >= 1);
        fp::reset();
        // Recovery after the fault clears: same registry, clean serve.
        let ok = FreeHgc::default().condense_shared(&reg, &g, &spec);
        assert!(!ok.orig_ids.is_empty());
    });
}

#[test]
fn failed_leader_build_is_retaken_and_output_is_unchanged() {
    drill(|| {
        let g = Arc::new(tiny(43));
        let spec = CondenseSpec::new(0.25).with_max_hops(2).with_seed(7);
        let want = FreeHgc::default().condense_shared(&ContextRegistry::new(), &g, &spec);

        let reg = ContextRegistry::new();
        fp::arm(fp::REGISTRY_BUILD_PANIC, 2);
        let got = FreeHgc::default().condense_shared(&reg, &g, &spec);
        assert_eq!(got.orig_ids, want.orig_ids, "bits survive two dead leaders");
        let stats = reg.fault_stats();
        assert_eq!(stats.panics_recovered, 2);
        // Each failed leader attempt is a (counted) miss; no partial
        // context was ever installed.
        assert_eq!(reg.lookup_stats().1, 3);
        assert_eq!(reg.len(), 1);
    });
}

#[test]
fn delayed_leader_coalesces_every_concurrent_waiter() {
    drill(|| {
        let g = Arc::new(tiny(44));
        let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(1);
        let reg = ContextRegistry::new();
        // Hold the leader's build open: every other thread must arrive
        // while the flight is in the air and coalesce onto it.
        fp::arm_seeded(fp::REGISTRY_BUILD_DELAY, 0, 1);
        let n = 6;
        let barrier = std::sync::Barrier::new(n);
        let ctxs: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        reg.context_for(&g, &spec)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ctxs.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        let stats = reg.fault_stats();
        assert_eq!(
            stats.singleflight_coalesced,
            n as u64 - 1,
            "with the leader held open, every other resolver coalesces"
        );
        assert_eq!(stats.duplicate_computes, 0);
        assert_eq!(reg.lookup_stats(), (n as u64 - 1, 1));
    });
}

#[test]
fn transient_read_error_is_retried_into_a_successful_load() {
    drill(|| {
        let dir = temp_dir("read-retry");
        let g = Arc::new(tiny(45));
        let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(2);
        let reg = ContextRegistry::new();
        let ctx = reg.context_for(&g, &spec);
        let root = g.schema().target();
        for p in ctx.metapaths(root, 2, 50).iter() {
            ctx.adjacency(p);
        }
        reg.persist(&dir, &g, &spec).expect("persist");

        let retries_before = reg.fault_stats().io_retries;
        // Fail exactly the first read attempt; the retry must land.
        fp::arm(fp::SNAPSHOT_READ_IO, 1);
        let reg2 = ContextRegistry::new();
        let warm = reg2.resolve_or_load(&dir, &g, &spec);
        assert_eq!(
            reg2.snapshot_stats(),
            (1, 0),
            "the load must succeed through the retry, not fall back cold"
        );
        assert!(warm.composed_len() > 0, "warm state actually arrived");
        assert!(reg2.fault_stats().io_retries > retries_before);
        std::fs::remove_dir_all(&dir).ok();
    });
}

#[test]
fn torn_write_retries_and_the_orphan_is_swept_on_restart() {
    drill(|| {
        let dir = temp_dir("torn");
        let g = Arc::new(tiny(46));
        let spec = CondenseSpec::new(0.2).with_max_hops(2).with_seed(2);
        let reg = ContextRegistry::new();
        let ctx = reg.context_for(&g, &spec);
        let root = g.schema().target();
        for p in ctx.metapaths(root, 2, 50).iter() {
            ctx.adjacency(p);
        }
        // First write attempt tears mid-persist (leaving its temp file
        // behind, as a crash would); the retry must succeed.
        fp::arm(fp::SNAPSHOT_TORN_WRITE, 1);
        let path = reg.persist(&dir, &g, &spec).expect("retry lands");
        assert!(path.exists(), "canonical file published despite the tear");
        let orphans = || {
            std::fs::read_dir(&dir)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .contains(".fhgc.tmp-")
                })
                .count()
        };
        assert_eq!(orphans(), 1, "the torn attempt's temp file is left over");

        // "Restart": a fresh registry's first touch of the directory
        // sweeps the orphan and still loads the snapshot cleanly.
        let reg2 = ContextRegistry::new();
        let warm = reg2.resolve_or_load(&dir, &g, &spec);
        assert_eq!(orphans(), 0, "startup sweep collects the orphan");
        assert_eq!(reg2.fault_stats().tmp_files_swept, 1);
        assert_eq!(reg2.snapshot_stats(), (1, 0));
        for p in warm.metapaths(root, 2, 50).iter() {
            assert_eq!(*warm.adjacency(p), *ctx.adjacency(p), "loaded bits");
        }
        std::fs::remove_dir_all(&dir).ok();
    });
}

#[test]
fn accountant_pressure_spike_never_changes_output_bits() {
    drill(|| {
        let g = Arc::new(tiny(48));
        let spec = CondenseSpec::new(0.25).with_max_hops(2).with_seed(5);
        let want = FreeHgc::default().condense_shared(&ContextRegistry::new(), &g, &spec);

        // Reject roughly half of ALL cache admissions — every family of
        // the unified accountant (composed, influence, diversity,
        // propagated) sees the spike, not just the composed one.
        let knobs = ChaosKnobs {
            seed: 13,
            accountant_pressure_one_in: Some(2),
            ..Default::default()
        };
        assert!(ChaosKnobs::active(), "suite runs with failpoints on");
        knobs.arm();
        let reg = ContextRegistry::new();
        let got = FreeHgc::default().condense_shared(&reg, &g, &spec);
        let ctx = reg.context_for(&g, &spec);
        freehgc::hgnn::propagation::propagate_ctx(&ctx, 2, 8);
        assert!(
            ChaosKnobs::faults_fired() > 0,
            "the pressure site must actually fire"
        );
        assert_eq!(got.orig_ids, want.orig_ids, "rejections only cost reuse");
        let st = ctx.stats();
        assert!(
            st.composed_rejected
                + st.influence_rejected
                + st.diversity_rejected
                + st.propagated_rejected
                > 0,
            "rejections are counted against the accountant's families"
        );

        // The spike must stay invisible in the bits even when it lands
        // on the propagated family: a second propagation request under
        // pressure recomputes or serves warm, but never diverges.
        let calm = ContextRegistry::new().context_for(&g, &spec);
        fp::reset();
        let want_pf = freehgc::hgnn::propagation::propagate_ctx(&calm, 2, 8);
        knobs.arm();
        let got_pf = freehgc::hgnn::propagation::propagate_ctx(&ctx, 2, 8);
        assert_eq!(want_pf.path_names, got_pf.path_names, "block names");
        for (a, b) in want_pf.blocks.iter().zip(&got_pf.blocks) {
            assert_eq!(a.data, b.data, "propagated bits survive the spike");
        }
    });
}

#[test]
fn composed_pressure_spike_never_changes_output_bits() {
    drill(|| {
        let g = Arc::new(tiny(47));
        let spec = CondenseSpec::new(0.25).with_max_hops(2).with_seed(5);
        let want = FreeHgc::default().condense_shared(&ContextRegistry::new(), &g, &spec);

        // Reject roughly half of all composed-cache admissions.
        let knobs = ChaosKnobs {
            seed: 9,
            composed_pressure_one_in: Some(2),
            ..Default::default()
        };
        assert!(ChaosKnobs::active(), "suite runs with failpoints on");
        knobs.arm();
        let reg = ContextRegistry::new();
        let got = FreeHgc::default().condense_shared(&reg, &g, &spec);
        assert!(
            ChaosKnobs::faults_fired() > 0,
            "the pressure site must actually fire"
        );
        assert_eq!(got.orig_ids, want.orig_ids, "rejections only cost reuse");
        let ctx = reg.context_for(&g, &spec);
        assert!(
            ctx.stats().composed_rejected > 0,
            "rejections are counted on the cache"
        );
    });
}

/// One blocked-pool serving setup shared by the serving drills: a
/// single worker held at a barrier, so requests queue (and coalesce)
/// deterministically before any execution happens.
fn blocked_serve(
    seed: u64,
) -> (
    freehgc::serve::ServeHandle,
    Arc<std::sync::Barrier>,
    Arc<freehgc::hetgraph::HeteroGraph>,
) {
    use freehgc::parallel::WorkerPool;
    use freehgc::serve::{ServeConfig, ServeHandle};
    let pool = WorkerPool::new(1, 8);
    let gate = Arc::new(std::sync::Barrier::new(2));
    let blocker = Arc::clone(&gate);
    pool.submit(Box::new(move || {
        blocker.wait();
    }))
    .unwrap();
    for _ in 0..4000 {
        if pool.queued() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let handle = ServeHandle::with_pool(ServeConfig::default(), pool);
    let g = Arc::new(tiny(seed));
    handle.register_graph("acm", Arc::clone(&g));
    (handle, gate, g)
}

fn serve_condense_req(seed: u64) -> freehgc::serve::Request {
    freehgc::serve::Request::Condense {
        graph: freehgc::serve::GraphRef::Id("acm".into()),
        method: "Random-HG".into(),
        ratio: 0.5,
        seed,
        max_hops: 2,
        max_paths: 64,
        deadline_ms: 0,
    }
}

/// The fault-free ground truth for [`serve_condense_req`], as reply
/// payload bytes.
fn serve_reference_payload(g: &Arc<freehgc::hetgraph::HeteroGraph>, seed: u64) -> (u8, Vec<u8>) {
    use freehgc::serve::wire;
    let spec = CondenseSpec::new(0.5).with_seed(seed).with_max_paths(64);
    let methods = freehgc::serve::default_methods();
    let c = methods.iter().find(|c| c.name() == "Random-HG").unwrap();
    let condensed = c.condense_shared(&ContextRegistry::new(), g, &spec);
    wire::encode_reply_payload(&freehgc::serve::Reply::Condensed(
        wire::CondensedSummary::from(&condensed),
    ))
}

#[test]
fn serve_worker_panic_errors_exactly_one_client_and_the_rest_serve_bitwise() {
    drill(|| {
        use freehgc::eval::ChaosKnobs;
        use freehgc::serve::{wire, ErrorCode};
        let (handle, gate, g) = blocked_serve(51);
        let req = serve_condense_req(7);
        let reference = serve_reference_payload(&g, 7);

        ChaosKnobs {
            serve_worker_panics: 1,
            ..Default::default()
        }
        .arm();

        // Six identical requests: one leader (whose pooled job will hit
        // the injected panic), five coalesced followers.
        const CLIENTS: usize = 6;
        let mut clients = Vec::new();
        for _ in 0..CLIENTS {
            let handle = handle.clone();
            let req = req.clone();
            clients.push(std::thread::spawn(move || handle.call(&req)));
        }
        for _ in 0..4000 {
            if handle.stats().coalesced == CLIENTS as u64 - 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(handle.stats().coalesced, CLIENTS as u64 - 1);
        gate.wait(); // release the worker; the panic fires now

        let replies: Vec<_> = clients.into_iter().map(|t| t.join().unwrap()).collect();
        let panicked: Vec<_> = replies
            .iter()
            .filter(|r| r.error_code() == Some(ErrorCode::WorkerPanic))
            .collect();
        assert_eq!(
            panicked.len(),
            1,
            "exactly one client observes the injected worker panic: {replies:?}"
        );
        assert_eq!(fp::fired(fp::SERVE_WORKER_PANIC), 1, "the fault must fire");
        for r in replies.iter().filter(|r| r.error_code().is_none()) {
            assert_eq!(
                wire::encode_reply_payload(r),
                reference,
                "surviving replies must be bitwise-identical to fault-free"
            );
        }
        assert_eq!(
            replies.iter().filter(|r| r.error_code().is_none()).count(),
            CLIENTS - 1,
            "every other client must be re-served successfully"
        );
        let stats = handle.stats();
        assert_eq!(stats.worker_panics, 1, "the panic is counted once");
        assert_eq!(
            stats.duplicate_computes, 0,
            "re-election must not duplicate a completed compute"
        );
        assert_eq!(
            handle.pool().stats().panics,
            0,
            "the job converts its own panic; the worker-thread backstop stays untouched"
        );

        // The pool and registry keep serving: a fresh request is warm
        // and bitwise-identical.
        let again = handle.call(&req);
        assert_eq!(wire::encode_reply_payload(&again), reference);
        handle.shutdown();
    });
}

#[test]
fn serve_queue_full_injection_is_typed_backpressure_then_full_recovery() {
    drill(|| {
        use freehgc::eval::ChaosKnobs;
        use freehgc::serve::{wire, ErrorCode, ServeConfig, ServeHandle};
        let handle = ServeHandle::new(ServeConfig::default());
        let g = Arc::new(tiny(52));
        handle.register_graph("acm", Arc::clone(&g));
        let req = serve_condense_req(9);
        let reference = serve_reference_payload(&g, 9);

        ChaosKnobs {
            serve_queue_full: 1,
            ..Default::default()
        }
        .arm();

        let bounced = handle.call(&req);
        assert_eq!(
            bounced.error_code(),
            Some(ErrorCode::Overloaded),
            "injected full queue must surface as typed backpressure: {bounced:?}"
        );
        assert_eq!(fp::fired(fp::SERVE_QUEUE_FULL), 1, "the fault must fire");
        assert_eq!(handle.stats().overloaded, 1);

        // The spike passed (plan exhausted): the same request now
        // serves, bitwise-identical to the fault-free reference.
        let served = handle.call(&req);
        assert_eq!(wire::encode_reply_payload(&served), reference);
        assert_eq!(handle.stats().overloaded, 1, "no further rejections");
        handle.shutdown();
    });
}
