//! Memory-governance equivalence: the PR-9 unified cache accountant —
//! one byte budget across all four cache families, plus the
//! priority-tiered capped snapshot — must be invisible in every output.
//!
//! Three contracts, each at worker-thread counts 1 and 4 (CI
//! additionally runs the suite in its `FREEHGC_THREADS` 1/4 matrix):
//!
//! * **Budgeted vs unbounded** — a context budgeted to ½ and ¼ of the
//!   unbounded workload footprint must produce bitwise-identical
//!   condensations (FreeHGC and every baseline, over a ratio sweep)
//!   AND bitwise-identical propagated feature blocks, while the peak
//!   resident bytes never exceed the budget at any `stats()` sample.
//! * **Eviction order** — under pressure the propagated family (the
//!   cheapest recompute flops per byte) must absorb evictions.
//! * **Capped snapshot** — a snapshot persisted under a disk byte
//!   ceiling must fit the ceiling, still load as a *valid* partial
//!   context, and serve the reference bits with the dropped tiers
//!   degraded to counted cold misses — never wrong bytes.

use freehgc::baselines::{
    CoarseningHg, GCondBaseline, GradMatchConfig, HGCondBaseline, HerdingHg, KCenterHg, RandomHg,
};
use freehgc::core::FreeHgc;
use freehgc::datasets::tiny;
use freehgc::hetgraph::{CondenseContext, CondenseSpec, CondensedGraph, Condenser, HeteroGraph};
use freehgc::hgnn::propagation::{propagate_ctx, PropagatedFeatures, PropagatedFeaturesCodec};
use freehgc::parallel as par;
use std::sync::{Arc, Mutex};

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    par::set_thread_override(Some(n));
    let out = f();
    par::set_thread_override(None);
    out
}

/// FreeHGC plus all six baselines, gradient-matching ones on quick
/// schedules.
fn condensers() -> Vec<Box<dyn Condenser>> {
    let quick_gm = GradMatchConfig {
        outer: 3,
        inner: 2,
        relay_samples: 2,
        ..Default::default()
    };
    vec![
        Box::new(FreeHgc::default()),
        Box::new(RandomHg),
        Box::new(HerdingHg),
        Box::new(KCenterHg),
        Box::new(CoarseningHg),
        Box::new(HGCondBaseline {
            cfg: quick_gm.clone(),
            kmeans_iters: 3,
        }),
        Box::new(GCondBaseline {
            cfg: quick_gm,
            ..Default::default()
        }),
    ]
}

fn assert_graphs_equal(a: &HeteroGraph, b: &HeteroGraph, what: &str) {
    let schema = a.schema();
    for t in schema.node_type_ids() {
        assert_eq!(a.num_nodes(t), b.num_nodes(t), "{what}: node count {t:?}");
        assert_eq!(a.features(t), b.features(t), "{what}: features {t:?}");
    }
    for e in schema.edge_type_ids() {
        assert_eq!(a.adjacency(e), b.adjacency(e), "{what}: adjacency {e:?}");
    }
    assert_eq!(a.labels(), b.labels(), "{what}: labels");
    assert_eq!(a.split(), b.split(), "{what}: split");
}

fn assert_condensed_equal(a: &CondensedGraph, b: &CondensedGraph, what: &str) {
    assert_eq!(a.orig_ids, b.orig_ids, "{what}: provenance");
    assert_graphs_equal(&a.graph, &b.graph, what);
}

fn assert_propagated_equal(a: &PropagatedFeatures, b: &PropagatedFeatures, what: &str) {
    assert_eq!(a.path_names, b.path_names, "{what}: path names");
    assert_eq!(a.blocks.len(), b.blocks.len(), "{what}: block count");
    for (i, (x, y)) in a.blocks.iter().zip(&b.blocks).enumerate() {
        assert_eq!((x.rows, x.cols), (y.rows, y.cols), "{what}: block {i} dims");
        assert_eq!(x.data, y.data, "{what}: block {i} payload bits");
    }
}

const RATIOS: [f64; 2] = [0.15, 0.3];
/// Two hop depths with the first re-requested at the end: a budget that
/// cannot hold both block sets forces the re-request to recompute — the
/// ping-pong that makes the propagated family demonstrably evict.
const PROP_KEYS: [(usize, usize); 3] = [(2, 8), (3, 8), (2, 8)];

fn spec_for(ratio: f64) -> CondenseSpec {
    CondenseSpec::new(ratio).with_max_hops(2).with_seed(9)
}

/// Runs the full workload — every condenser over the ratio sweep, then
/// the propagation keys — on `ctx`, invoking `sample` on the live
/// counters after every step (where the budget invariant is asserted).
fn run_workload(
    ctx: &CondenseContext<'_>,
    sample: &mut dyn FnMut(&freehgc::hetgraph::CacheCounters),
) -> (Vec<CondensedGraph>, Vec<Arc<PropagatedFeatures>>) {
    let mut grids = Vec::new();
    for c in condensers() {
        for ratio in RATIOS {
            grids.push(c.condense_in(ctx, &spec_for(ratio)));
            sample(&ctx.stats());
        }
    }
    let mut props = Vec::new();
    for (hops, paths) in PROP_KEYS {
        props.push(propagate_ctx(ctx, hops, paths));
        sample(&ctx.stats());
    }
    (grids, props)
}

/// The unbounded reference workload (at one worker) and its footprint.
fn reference() -> (
    HeteroGraph,
    Vec<CondensedGraph>,
    Vec<Arc<PropagatedFeatures>>,
    usize,
) {
    let g = tiny(51);
    let unbounded = CondenseContext::new(&g);
    let (grids, props) = with_threads(1, || run_workload(&unbounded, &mut |_| {}));
    let footprint = unbounded.stats().cache_bytes as usize;
    (g, grids, props, footprint)
}

#[test]
fn budgeted_context_is_bitwise_equal_and_never_exceeds_its_budget() {
    let (g, want_grids, want_props, footprint) = reference();
    assert!(footprint > 0, "the reference workload must cache something");

    for divisor in [2usize, 4] {
        let budget = (footprint / divisor).max(1);
        for threads in [1usize, 4] {
            let ctx = CondenseContext::new(&g).with_cache_budget(Some(budget));
            let what = format!("budget 1/{divisor} @ {threads}t");
            let (grids, props) = with_threads(threads, || {
                run_workload(&ctx, &mut |st| {
                    assert!(
                        st.cache_peak_bytes <= budget as u64,
                        "{what}: peak {} exceeded budget {budget}",
                        st.cache_peak_bytes
                    );
                    assert!(
                        st.cache_bytes <= budget as u64,
                        "{what}: resident {} exceeded budget {budget}",
                        st.cache_bytes
                    );
                })
            });
            for ((a, b), i) in want_grids.iter().zip(&grids).zip(0..) {
                assert_condensed_equal(a, b, &format!("{what}: grid cell {i}"));
            }
            for ((a, b), i) in want_props.iter().zip(&props).zip(0..) {
                assert_propagated_equal(a, b, &format!("{what}: propagation {i}"));
            }
            let st = ctx.stats();
            let evictions = st.composed_evictions
                + st.influence_evictions
                + st.diversity_evictions
                + st.propagated_evictions;
            let rejected = st.composed_rejected
                + st.influence_rejected
                + st.diversity_rejected
                + st.propagated_rejected;
            assert!(
                evictions + rejected > 0,
                "{what}: a fractional budget must actually constrain the caches"
            );
        }
    }
}

#[test]
fn propagated_blocks_are_evicted_first_under_pressure() {
    let (g, _, want_props, footprint) = reference();
    let budget = (footprint / 2).max(1);
    let ctx = CondenseContext::new(&g).with_cache_budget(Some(budget));
    let (_, props) = with_threads(1, || run_workload(&ctx, &mut |_| {}));
    let st = ctx.stats();
    assert!(
        st.propagated_evictions > 0,
        "at half the footprint the propagated family (cheapest flops per byte) must \
         absorb evictions, got composed {} influence {} diversity {} propagated {}",
        st.composed_evictions,
        st.influence_evictions,
        st.diversity_evictions,
        st.propagated_evictions
    );
    // Evicted-and-recomputed blocks carry the reference bits.
    for ((a, b), i) in want_props.iter().zip(&props).zip(0..) {
        assert_propagated_equal(a, b, &format!("pressured propagation {i}"));
    }
}

#[test]
fn capped_snapshot_round_trips_as_a_partial_context_with_counted_cold_misses() {
    let (g, want_grids, want_props, _) = reference();
    let warm = CondenseContext::new(&g);
    with_threads(1, || run_workload(&warm, &mut |_| {}));

    let dir = std::env::temp_dir().join(format!("fhgc-budget-equiv-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let full_path = dir.join("full.fhgc");
    warm.save_snapshot_with(&full_path, Some(&PropagatedFeaturesCodec))
        .expect("save full snapshot");
    let full_bytes = std::fs::metadata(&full_path).unwrap().len() as usize;

    let cap = (full_bytes / 2).max(64);
    let capped_path = dir.join("capped.fhgc");
    let dropped = warm
        .save_snapshot_capped(&capped_path, Some(&PropagatedFeaturesCodec), cap)
        .expect("save capped snapshot");
    let capped_bytes = std::fs::metadata(&capped_path).unwrap().len() as usize;
    assert!(
        capped_bytes <= cap,
        "capped file {capped_bytes} B must fit its {cap} B ceiling"
    );
    assert!(
        dropped > 0,
        "half the file size must drop at least one tier"
    );

    // Baseline: a context seeded from the FULL snapshot pays some
    // misses on the workload (paths and oriented maps are never
    // persisted); the capped load must pay strictly more — the dropped
    // tiers come back as cold recomputes, not as wrong bytes.
    let full_misses = {
        let loaded = CondenseContext::new(&g);
        loaded
            .load_snapshot_with(&full_path, Some(&PropagatedFeaturesCodec))
            .expect("full snapshot loads");
        with_threads(1, || run_workload(&loaded, &mut |_| {}));
        loaded.stats().total_misses()
    };

    for threads in [1usize, 4] {
        let loaded = CondenseContext::new(&g);
        let report = loaded
            .load_snapshot_with(&capped_path, Some(&PropagatedFeaturesCodec))
            .expect("a capped snapshot is still a valid snapshot");
        assert!(
            report.installed() > 0,
            "{threads}t: the kept tiers must install as a working partial context"
        );
        let (grids, props) = with_threads(threads, || run_workload(&loaded, &mut |_| {}));
        for ((a, b), i) in want_grids.iter().zip(&grids).zip(0..) {
            assert_condensed_equal(a, b, &format!("capped/{threads}t: grid cell {i}"));
        }
        for ((a, b), i) in want_props.iter().zip(&props).zip(0..) {
            assert_propagated_equal(a, b, &format!("capped/{threads}t: propagation {i}"));
        }
        assert!(
            loaded.stats().total_misses() > full_misses,
            "{threads}t: dropped tiers must surface as extra counted cold misses \
             (capped {} vs full {})",
            loaded.stats().total_misses(),
            full_misses
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
