//! Incremental-invalidation equivalence: a context updated through a
//! typed [`GraphDelta`] must be indistinguishable — in every output bit
//! — from a cold rebuild of the mutated graph.
//!
//! Contracts, each exercised at worker-thread counts 1 and 4 (CI
//! additionally runs the whole suite in its `FREEHGC_THREADS` 1/4
//! matrix):
//!
//! * **Bitwise equivalence** — for FreeHGC and every baseline, a
//!   condensation (and feature propagation) served from a delta-seeded
//!   context equals the cold-rebuild result exactly, while the seed
//!   report shows nonzero reuse beyond the schema-only path sets.
//! * **Degenerate deltas** — a delta touching every edge type keeps
//!   nothing derived (full rebuild), and an empty delta is a perfect
//!   no-op: same fingerprint, zero invalidations, everything inherited.
//! * **Cross-restart seeding** — with no live old context, the delta
//!   resolution seeds from the *old* fingerprint's on-disk snapshot,
//!   filtered through the same invalidation rules.

use freehgc::baselines::{
    CoarseningHg, GCondBaseline, GradMatchConfig, HGCondBaseline, HerdingHg, KCenterHg, RandomHg,
};
use freehgc::core::FreeHgc;
use freehgc::datasets::tiny;
use freehgc::hetgraph::{
    CondenseContext, CondenseSpec, CondensedGraph, Condenser, ContextRegistry, GraphDelta,
    HeteroGraph,
};
use freehgc::hgnn::propagation::{propagate_ctx, PropagatedFeaturesCodec};
use freehgc::parallel as par;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    par::set_thread_override(Some(n));
    let out = f();
    par::set_thread_override(None);
    out
}

/// FreeHGC plus all baselines, gradient-matching ones on quick schedules.
fn condensers() -> Vec<Box<dyn Condenser>> {
    let quick_gm = GradMatchConfig {
        outer: 3,
        inner: 2,
        relay_samples: 2,
        ..Default::default()
    };
    vec![
        Box::new(FreeHgc::default()),
        Box::new(RandomHg),
        Box::new(HerdingHg),
        Box::new(KCenterHg),
        Box::new(CoarseningHg),
        Box::new(HGCondBaseline {
            cfg: quick_gm.clone(),
            kmeans_iters: 3,
        }),
        Box::new(GCondBaseline {
            cfg: quick_gm,
            ..Default::default()
        }),
    ]
}

fn assert_graphs_equal(a: &HeteroGraph, b: &HeteroGraph, what: &str) {
    let schema = a.schema();
    for t in schema.node_type_ids() {
        assert_eq!(a.num_nodes(t), b.num_nodes(t), "{what}: node count {t:?}");
        assert_eq!(a.features(t), b.features(t), "{what}: features {t:?}");
    }
    for e in schema.edge_type_ids() {
        assert_eq!(a.adjacency(e), b.adjacency(e), "{what}: adjacency {e:?}");
    }
    assert_eq!(a.labels(), b.labels(), "{what}: labels");
    assert_eq!(a.split(), b.split(), "{what}: split");
}

fn assert_condensed_equal(a: &CondensedGraph, b: &CondensedGraph, what: &str) {
    assert_eq!(a.orig_ids, b.orig_ids, "{what}: provenance");
    assert_graphs_equal(&a.graph, &b.graph, what);
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fhgc-delta-eq-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The first stored edge `(row, col)` of edge type `e` at or after
/// `from_row` (wrapping).
fn some_edge(g: &HeteroGraph, e: freehgc::hetgraph::EdgeTypeId, from_row: usize) -> (u32, u32) {
    let a = g.adjacency(e);
    for i in 0..a.nrows() {
        let r = (from_row + i) % a.nrows();
        if let Some(&c) = a.row_indices(r).first() {
            return (r as u32, c);
        }
    }
    panic!("fixture relation {e:?} has no edges");
}

/// A deterministic "random" delta parameterized by `variant`: touches
/// exactly one relation (remove one edge, add two — one of them
/// weighted and possibly accumulating onto an existing pair) and one
/// target feature row, so plenty of cache entries must survive and
/// plenty must die.
fn one_relation_delta(g: &HeteroGraph, variant: u64) -> GraphDelta {
    let schema = g.schema();
    let e = schema
        .edge_type_ids()
        .next()
        .expect("fixture has relations");
    let a = g.adjacency(e);
    let (r, c) = some_edge(g, e, variant as usize * 7 + 3);
    let t = schema.target();
    let dim = g.features(t).dim();
    let row = (variant as usize * 5 + 1) % g.num_nodes(t);
    let mut d = GraphDelta::new();
    d.remove_edge(e, r, c)
        .add_edge(
            e,
            r,
            ((c as usize + 1 + variant as usize) % a.ncols()) as u32,
        )
        .add_weighted_edge(e, ((r as usize + 2) % a.nrows()) as u32, c, 0.5)
        .update_feature_row(
            t,
            row as u32,
            (0..dim).map(|i| 0.25 * i as f32 - 1.0).collect(),
        );
    d
}

/// Warms every cache family of `ctx` the way a serving process would:
/// one full FreeHGC condensation plus feature propagation.
fn warm(ctx: &CondenseContext<'_>, spec: &CondenseSpec) {
    FreeHgc::default().condense_in(ctx, spec);
    propagate_ctx(ctx, 2, 16);
}

#[test]
fn delta_updated_context_matches_cold_rebuild_for_every_condenser() {
    for threads in [1usize, 4] {
        for variant in [0u64, 1] {
            let what = format!("{threads}t/v{variant}");
            let g_old = Arc::new(tiny(61 + variant));
            let spec = CondenseSpec::new(0.25).with_max_hops(2).with_seed(5);
            let delta = one_relation_delta(&g_old, variant);
            let mut mutated = (*g_old).clone();
            mutated.apply_delta(&delta);
            let g_new = Arc::new(mutated);
            assert_ne!(
                g_old.fingerprint(),
                g_new.fingerprint(),
                "{what}: the delta must change the graph"
            );

            // Cold reference: a fresh context over the mutated graph.
            let reg_cold = ContextRegistry::new();
            let ctx_cold = reg_cold.context_for(&g_new, &spec);
            let reference: Vec<CondensedGraph> = condensers()
                .iter()
                .map(|c| with_threads(threads, || c.condense_in(&ctx_cold, &spec)))
                .collect();
            let pf_cold = with_threads(threads, || propagate_ctx(&ctx_cold, 2, 16));

            // Delta path: warm the old graph's context, then resolve the
            // mutated graph by inheriting its surviving entries.
            let reg = ContextRegistry::new();
            let ctx_old = reg.context_for(&g_old, &spec);
            with_threads(threads, || warm(&ctx_old, &spec));
            let (ctx_new, report) = reg.resolve_delta(g_old.fingerprint(), &g_new, &spec, &delta);
            assert!(
                report.reused() > report.paths,
                "{what}: entries beyond the schema-only path sets must survive \
                 a one-relation delta, got {report:?}"
            );
            assert!(
                report.dropped > 0,
                "{what}: the delta must invalidate something, got {report:?}"
            );

            for (c, want) in condensers().iter().zip(&reference) {
                let got = with_threads(threads, || c.condense_in(&ctx_new, &spec));
                assert_condensed_equal(want, &got, &format!("{} delta/{what}", c.name()));
            }
            let pf_new = with_threads(threads, || propagate_ctx(&ctx_new, 2, 16));
            assert_eq!(pf_new.path_names, pf_cold.path_names, "{what}: block names");
            for (a, b) in pf_new.blocks.iter().zip(&pf_cold.blocks) {
                assert_eq!(a.data, b.data, "{what}: propagated block bits");
            }
        }
    }
}

#[test]
fn a_delta_touching_every_edge_type_degenerates_to_a_full_rebuild() {
    let g_old = Arc::new(tiny(71));
    let spec = CondenseSpec::new(0.25).with_max_hops(2).with_seed(5);
    let mut delta = GraphDelta::new();
    for e in g_old.schema().edge_type_ids() {
        let (r, c) = some_edge(&g_old, e, 0);
        delta.remove_edge(e, r, c);
        delta.add_edge(
            e,
            r,
            (c as usize + 1).rem_euclid(g_old.adjacency(e).ncols()) as u32,
        );
    }
    assert_eq!(
        delta.touched_edges().len(),
        g_old.schema().num_edge_types(),
        "the delta must touch every relation"
    );
    let mut mutated = (*g_old).clone();
    mutated.apply_delta(&delta);
    let g_new = Arc::new(mutated);

    let reg = ContextRegistry::new();
    let ctx_old = reg.context_for(&g_old, &spec);
    with_threads(1, || warm(&ctx_old, &spec));
    let (ctx_new, report) = reg.resolve_delta(g_old.fingerprint(), &g_new, &spec, &delta);
    // Every derived family depends on at least one relation, so nothing
    // derived survives — only the schema-only path sets (and any cached
    // "no relation between these types" negatives) carry over.
    assert_eq!(report.factors, 0, "all factors traverse a touched relation");
    assert_eq!(report.composed, 0, "{report:?}");
    assert_eq!(report.influence, 0, "{report:?}");
    assert_eq!(report.diversity, 0, "{report:?}");
    assert_eq!(report.propagated, 0, "{report:?}");
    assert!(report.dropped > 0, "{report:?}");

    // And the rebuild-from-scratch semantics still hold bitwise.
    let reg_cold = ContextRegistry::new();
    let ctx_cold = reg_cold.context_for(&g_new, &spec);
    for threads in [1usize, 4] {
        let want = with_threads(threads, || FreeHgc::default().condense_in(&ctx_cold, &spec));
        let got = with_threads(threads, || FreeHgc::default().condense_in(&ctx_new, &spec));
        assert_condensed_equal(&want, &got, &format!("full-rebuild delta/{threads}t"));
    }
}

#[test]
fn an_empty_delta_is_a_noop_with_zero_invalidations() {
    let g = tiny(81);
    let fp = g.fingerprint();
    let empty = GraphDelta::new();
    assert!(empty.is_empty());
    assert!(empty.touched_edges().is_empty());

    let mut clone = g.clone();
    clone.apply_delta(&empty);
    assert_eq!(
        clone.fingerprint(),
        fp,
        "an empty delta must not change (or even invalidate) the fingerprint"
    );

    let spec = CondenseSpec::new(0.25).with_max_hops(2).with_seed(5);
    let ctx_old = CondenseContext::new(&g);
    with_threads(1, || warm(&ctx_old, &spec));
    let ctx_new = CondenseContext::new(&clone);
    let report = ctx_new.seed_from(&ctx_old, &empty);
    assert_eq!(report.dropped, 0, "nothing to invalidate: {report:?}");
    assert!(report.factors > 0, "{report:?}");
    assert!(report.composed > 0, "{report:?}");
    assert_eq!(report.propagated, 1, "{report:?}");

    // The seeded context serves everything without recomputing: a full
    // FreeHGC run adds no new misses to the inherited families.
    let before = ctx_new.stats();
    let want = with_threads(1, || FreeHgc::default().condense_in(&ctx_old, &spec));
    let got = with_threads(1, || FreeHgc::default().condense_in(&ctx_new, &spec));
    assert_condensed_equal(&want, &got, "empty delta");
    let after = ctx_new.stats();
    assert_eq!(after.factors.1, before.factors.1, "factors re-missed");
    assert_eq!(after.composed.1, before.composed.1, "composed re-missed");
    assert_eq!(after.influence.1, before.influence.1, "influence re-missed");
    assert_eq!(after.diversity.1, before.diversity.1, "diversity re-missed");
}

#[test]
fn delta_resolution_seeds_from_the_old_snapshot_across_restarts() {
    let dir = temp_dir("restart");
    let g_old = Arc::new(tiny(91));
    let spec = CondenseSpec::new(0.25).with_max_hops(2).with_seed(5);
    let delta = one_relation_delta(&g_old, 0);
    let mut mutated = (*g_old).clone();
    mutated.apply_delta(&delta);
    let g_new = Arc::new(mutated);

    // "Process one": warm the old graph's context and persist it.
    let reg1 = ContextRegistry::new();
    let ctx1 = reg1.context_for(&g_old, &spec);
    with_threads(1, || warm(&ctx1, &spec));
    reg1.persist_with(&dir, &g_old, &spec, Some(&PropagatedFeaturesCodec))
        .expect("persist");

    // Cold reference over the mutated graph.
    let reg_cold = ContextRegistry::new();
    let ctx_cold = reg_cold.context_for(&g_new, &spec);

    for threads in [1usize, 4] {
        // "Process two": no live old context — the old fingerprint's
        // snapshot, filtered through the delta rules, seeds the resolve.
        let reg2 = ContextRegistry::new();
        let (ctx2, report) = reg2.resolve_delta_or_load(
            &dir,
            g_old.fingerprint(),
            &g_new,
            &spec,
            &delta,
            Some(&PropagatedFeaturesCodec),
        );
        assert_eq!(
            reg2.snapshot_stats(),
            (1, 0),
            "{threads}t: the old snapshot must load (delta-filtered)"
        );
        assert!(report.reused() > 0, "{threads}t: {report:?}");
        assert!(report.dropped > 0, "{threads}t: {report:?}");
        let want = with_threads(threads, || FreeHgc::default().condense_in(&ctx_cold, &spec));
        let got = with_threads(threads, || FreeHgc::default().condense_in(&ctx2, &spec));
        assert_condensed_equal(&want, &got, &format!("snapshot delta/{threads}t"));
    }
    std::fs::remove_dir_all(&dir).ok();
}
